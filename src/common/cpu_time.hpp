// Per-thread CPU-time measurement.
//
// The sharded engine's per-shard busy accounting and the scaling bench
// both need "CPU seconds this thread actually executed": unlike wall
// time it excludes barrier waits and time spent descheduled, so
// summing events/busy across shards measures aggregate processing
// capacity even on an oversubscribed host.
#pragma once

#if defined(__linux__)
#include <time.h>
#else
#include <chrono>
#endif

namespace xartrek {

/// CPU seconds consumed by the calling thread.  Falls back to a
/// wall-clock reading where no thread clock exists (differences are
/// still meaningful; absolute values are not).
inline double thread_cpu_seconds() {
#if defined(__linux__)
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
#endif
}

}  // namespace xartrek
