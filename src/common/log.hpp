// Minimal leveled logger.
//
// The simulator and run-time narrate decisions (placement choices, FPGA
// reconfigurations, threshold updates) through a Logger owned by whoever
// constructs the stack -- there is no global logger (I.2/I.3).  Examples
// construct a verbose one; benchmarks construct a quiet one.
#pragma once

#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>

namespace xartrek {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

[[nodiscard]] constexpr const char* to_string(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

/// A sink-configurable, level-filtered logger.  Copyable; copies share the
/// sink, so a component handed a Logger by value can keep it.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Default: drop everything (quiet by default for benchmarks/tests).
  Logger() : level_(LogLevel::kOff), sink_(nullptr) {}

  Logger(LogLevel level, Sink sink)
      : level_(level), sink_(std::move(sink)) {}

  /// A logger that writes `level: message` lines to stderr.
  [[nodiscard]] static Logger stderr_logger(LogLevel level) {
    return Logger(level, [](LogLevel l, const std::string& msg) {
      std::cerr << "[" << to_string(l) << "] " << msg << "\n";
    });
  }

  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel l) const {
    return sink_ && l >= level_ && level_ != LogLevel::kOff;
  }

  void log(LogLevel l, const std::string& msg) const {
    if (enabled(l)) sink_(l, msg);
  }

  template <typename... Args>
  void trace(Args&&... args) const {
    emit(LogLevel::kTrace, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void debug(Args&&... args) const {
    emit(LogLevel::kDebug, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void info(Args&&... args) const {
    emit(LogLevel::kInfo, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void warn(Args&&... args) const {
    emit(LogLevel::kWarn, std::forward<Args>(args)...);
  }

 private:
  template <typename... Args>
  void emit(LogLevel l, Args&&... args) const {
    if (!enabled(l)) return;
    std::ostringstream oss;
    (oss << ... << args);
    sink_(l, oss.str());
  }

  LogLevel level_;
  Sink sink_;
};

}  // namespace xartrek
