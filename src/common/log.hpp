// Minimal leveled logger.
//
// The simulator and run-time narrate decisions (placement choices, FPGA
// reconfigurations, threshold updates) through a Logger owned by whoever
// constructs the stack -- there is no global logger (I.2/I.3).  Examples
// construct a verbose one; benchmarks construct a quiet one.
//
// Hot-path shape: a disabled level costs one branch (no argument
// formatting, no allocation).  An enabled message is formatted into a
// fixed stack buffer with std::to_chars -- no std::ostringstream, no
// std::string, no heap -- and handed to the sink as a string_view.
// Arguments that are nullary callables are *lazy*: they are invoked only
// when the message is actually emitted, so an expensive-to-render
// argument can be wrapped in a lambda at the call site for free.
#pragma once

#include <charconv>
#include <cstddef>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

namespace xartrek {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

[[nodiscard]] constexpr const char* to_string(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

/// Fixed-capacity message formatter.  Overlong messages are truncated
/// with a trailing "..." rather than allocating; log lines are
/// diagnostics, not payloads.
class LogBuffer {
 public:
  static constexpr std::size_t kCapacity = 512;

  void append(std::string_view s) {
    const std::size_t room = kCapacity - len_;
    const std::size_t n = s.size() < room ? s.size() : room;
    std::memcpy(buf_ + len_, s.data(), n);
    len_ += n;
    if (n < s.size()) truncated_ = true;
  }
  void append(const char* s) { append(std::string_view(s)); }
  void append(const std::string& s) { append(std::string_view(s)); }
  void append(char c) { append(std::string_view(&c, 1)); }
  void append(bool b) { append(b ? std::string_view("true") : "false"); }

  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T> &&
                                        !std::is_same_v<T, char> &&
                                        !std::is_same_v<T, bool>>>
  void append(T v) {
    // Integers exactly; floating point in shortest round-trip form.
    char tmp[32];
    const std::to_chars_result r = std::to_chars(tmp, tmp + sizeof(tmp), v);
    if (r.ec == std::errc()) {
      append(std::string_view(tmp, static_cast<std::size_t>(r.ptr - tmp)));
    }
  }

  [[nodiscard]] std::string_view view() {
    if (truncated_ && len_ >= 3) {
      std::memcpy(buf_ + len_ - 3, "...", 3);
    }
    return std::string_view(buf_, len_);
  }

 private:
  char buf_[kCapacity];
  std::size_t len_ = 0;
  bool truncated_ = false;
};

/// A sink-configurable, level-filtered logger.  Copyable; copies share the
/// sink, so a component handed a Logger by value can keep it.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  /// Default: drop everything (quiet by default for benchmarks/tests).
  Logger() : level_(LogLevel::kOff), sink_(nullptr) {}

  Logger(LogLevel level, Sink sink)
      : level_(level), sink_(std::move(sink)) {}

  /// A logger that writes `level: message` lines to stderr.
  [[nodiscard]] static Logger stderr_logger(LogLevel level) {
    return Logger(level, [](LogLevel l, std::string_view msg) {
      std::cerr << "[" << to_string(l) << "] " << msg << "\n";
    });
  }

  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel l) const {
    return sink_ && l >= level_ && level_ != LogLevel::kOff;
  }

  void log(LogLevel l, std::string_view msg) const {
    if (enabled(l)) sink_(l, msg);
  }

  template <typename... Args>
  void trace(Args&&... args) const {
    emit(LogLevel::kTrace, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void debug(Args&&... args) const {
    emit(LogLevel::kDebug, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void info(Args&&... args) const {
    emit(LogLevel::kInfo, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void warn(Args&&... args) const {
    emit(LogLevel::kWarn, std::forward<Args>(args)...);
  }

 private:
  /// Append one argument; nullary callables are invoked lazily here --
  /// only on the enabled path -- and their result appended.
  template <typename A>
  static void append_one(LogBuffer& buf, A&& a) {
    if constexpr (std::is_invocable_v<A&>) {
      buf.append(a());
    } else {
      buf.append(std::forward<A>(a));
    }
  }

  template <typename... Args>
  void emit(LogLevel l, Args&&... args) const {
    if (!enabled(l)) return;  // disabled levels cost exactly this branch
    LogBuffer buf;
    (append_one(buf, std::forward<Args>(args)), ...);
    sink_(l, buf.view());
  }

  LogLevel level_;
  Sink sink_;
};

}  // namespace xartrek
