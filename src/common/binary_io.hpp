// Little-endian binary encoding helpers.
//
// Shared by the scheduler wire protocol, the fat-binary image format,
// and the workload dataset files.  Writer appends -- either into its
// own buffer or into a caller-supplied scratch buffer so hot paths can
// reuse one allocation across messages; it can also patch a previously
// reserved length field in place (single-pass framing).  Reader is
// strictly bounds-checked and throws xartrek::Error on truncation
// (never reads past the buffer).  The stream helpers at the bottom move
// whole little-endian blocks through iostreams instead of a byte at a
// time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"

namespace xartrek {

// Canonical little-endian packing, shared by the in-memory writer and
// the iostream block helpers below.
inline void put_le_u16(unsigned char* dst, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) dst[i] = (v >> (8 * i)) & 0xFF;
}
inline void put_le_u32(unsigned char* dst, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) dst[i] = (v >> (8 * i)) & 0xFF;
}
inline void put_le_u64(unsigned char* dst, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) dst[i] = (v >> (8 * i)) & 0xFF;
}
[[nodiscard]] inline std::uint32_t get_le_u32(const unsigned char* src) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(src[i]) << (8 * i);
  }
  return v;
}
[[nodiscard]] inline std::uint64_t get_le_u64(const unsigned char* src) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(src[i]) << (8 * i);
  }
  return v;
}

/// Append-only little-endian writer.  Default-constructed it owns its
/// buffer (finish with `take`); constructed over an external vector it
/// appends there, letting callers keep one scratch buffer alive across
/// many messages.  Not copyable or movable: the external-buffer mode
/// holds a pointer into the caller's vector, and the owning mode a
/// pointer into itself.
class BinaryWriter {
 public:
  BinaryWriter() : out_(&owned_) {}
  explicit BinaryWriter(std::vector<std::byte>& out) : out_(&out) {}
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void u8(std::uint8_t v) { out_->push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) {
    unsigned char b[2];
    put_le_u16(b, v);
    append(b, sizeof(b));
  }
  void u32(std::uint32_t v) {
    unsigned char b[4];
    put_le_u32(b, v);
    append(b, sizeof(b));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void u64(std::uint64_t v) {
    unsigned char b[8];
    put_le_u64(b, v);
    append(b, sizeof(b));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  /// Length-prefixed string (<= 64 KiB).
  void str(std::string_view s) {
    XAR_EXPECTS(s.size() <= 0xFFFF);
    u16(static_cast<std::uint16_t>(s.size()));
    append(reinterpret_cast<const unsigned char*>(s.data()), s.size());
  }

  /// Overwrite 4 bytes at `offset` (reserved earlier, e.g. with
  /// `u32(0)`) with the little-endian encoding of `v`.
  void patch_u32(std::size_t offset, std::uint32_t v) {
    XAR_EXPECTS(offset + 4 <= out_->size());
    put_le_u32(reinterpret_cast<unsigned char*>(out_->data() + offset), v);
  }

  /// Only valid for a writer that owns its buffer.
  [[nodiscard]] std::vector<std::byte> take() {
    XAR_EXPECTS(out_ == &owned_);
    return std::move(owned_);
  }
  [[nodiscard]] std::size_t size() const { return out_->size(); }

 private:
  void append(const unsigned char* data, std::size_t n) {
    const auto* p = reinterpret_cast<const std::byte*>(data);
    out_->insert(out_->end(), p, p + n);
  }

  std::vector<std::byte> owned_;
  std::vector<std::byte>* out_;
};

/// Bounds-checked little-endian reader.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return std::to_integer<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() {
    const auto lo = u8();
    const auto hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    const std::uint32_t hi = u16();
    return lo | (hi << 16);
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint16_t len = u16();
    need(len);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  /// Length-prefixed string, borrowed: the returned view aliases the
  /// reader's underlying buffer and is valid only while that buffer
  /// lives.  Bounds-checked exactly like str().
  std::string_view str_view() {
    const std::uint16_t len = u16();
    need(len);
    std::string_view s(reinterpret_cast<const char*>(data_.data() + pos_),
                       len);
    pos_ += len;
    return s;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw Error("binary decode: truncated input");
    }
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

// --- iostream block helpers ------------------------------------------------
//
// Encode into a caller-provided staging array with the `put_le*`
// helpers above, flush the whole record with one `os.write`; mirror
// with one `is.read` and `get_le*`.  Replaces per-byte put/get loops
// on dataset hot paths.

inline void write_block(std::ostream& os, const unsigned char* data,
                        std::size_t n) {
  os.write(reinterpret_cast<const char*>(data),
           static_cast<std::streamsize>(n));
}
/// Reads exactly `n` bytes or throws `Error(context + ": truncated file")`.
inline void read_block(std::istream& is, unsigned char* data, std::size_t n,
                       const char* context) {
  is.read(reinterpret_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is.gcount()) != n) {
    throw Error(std::string(context) + ": truncated file");
  }
}

}  // namespace xartrek
