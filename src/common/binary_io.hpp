// Little-endian binary encoding helpers.
//
// Shared by the scheduler wire protocol and the fat-binary image
// format.  Writer appends; Reader is strictly bounds-checked and throws
// xartrek::Error on truncation (never reads past the buffer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace xartrek {

/// Append-only little-endian writer.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v & 0xFF));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v & 0xFFFF));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v & 0xFFFF'FFFF));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  /// Length-prefixed string (<= 64 KiB).
  void str(const std::string& s) {
    XAR_EXPECTS(s.size() <= 0xFFFF);
    u16(static_cast<std::uint16_t>(s.size()));
    for (char c : s) buf_.push_back(static_cast<std::byte>(c));
  }

  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked little-endian reader.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return std::to_integer<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() {
    const auto lo = u8();
    const auto hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    const std::uint32_t hi = u16();
    return lo | (hi << 16);
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint16_t len = u16();
    need(len);
    std::string s;
    s.reserve(len);
    for (std::uint16_t i = 0; i < len; ++i) {
      s.push_back(
          static_cast<char>(std::to_integer<std::uint8_t>(data_[pos_++])));
    }
    return s;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw Error("binary decode: truncated input");
    }
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace xartrek
