#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/assert.hpp"

namespace xartrek {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  XAR_EXPECTS(header_.empty() || row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream oss;
    oss << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      oss << " " << std::left << std::setw(static_cast<int>(widths[i]))
          << cell << " |";
    }
    oss << "\n";
    return oss.str();
  };
  auto rule = [&] {
    std::ostringstream oss;
    oss << "+";
    for (std::size_t w : widths) oss << std::string(w + 2, '-') << "+";
    oss << "\n";
    return oss.str();
  };

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  out << rule();
  if (!header_.empty()) {
    out << render_row(header_);
    out << rule();
  }
  for (const auto& r : rows_) out << render_row(r);
  out << rule();
  return out.str();
}

std::string TextTable::render_csv() const {
  auto esc = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += "\"\"";
      else out += c;
    }
    out += "\"";
    return out;
  };
  std::ostringstream out;
  auto row_csv = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ",";
      out << esc(row[i]);
    }
    out << "\n";
  };
  if (!header_.empty()) row_csv(header_);
  for (const auto& r : rows_) row_csv(r);
  return out.str();
}

}  // namespace xartrek
