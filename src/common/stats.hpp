// Small statistics accumulator used by every experiment harness.
#pragma once

#include <cmath>
#include <cstddef>

#include "common/assert.hpp"

namespace xartrek {

/// Online mean / variance / extrema accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const {
    XAR_EXPECTS(n_ > 0);
    return mean_;
  }
  [[nodiscard]] double variance() const {
    XAR_EXPECTS(n_ > 0);
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    XAR_EXPECTS(n_ > 0);
    return min_;
  }
  [[nodiscard]] double max() const {
    XAR_EXPECTS(n_ > 0);
    return max_;
  }
  [[nodiscard]] double sum() const {
    return mean_ * static_cast<double>(n_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace xartrek
