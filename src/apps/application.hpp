// The application process model.
//
// One AppProcess is one run of one benchmark on the testbed: an x86 pre
// phase, one invocation of the selected function placed by the system
// under test, and an x86 post phase.  Four systems can host it -- the
// paper's three baselines and Xar-Trek itself:
//
//   VanillaX86:  everything on the x86 server (never migrate).
//   VanillaArm:  everything on the ARM server.
//   AlwaysFpga:  the traditional acceleration flow -- the function always
//                offloads; the XCLBIN is configured lazily at the first
//                kernel call and the caller waits for it.
//   XarTrek:     instrumented flow -- eager FPGA pre-configuration at
//                main start, per-call scheduler decision (Algorithm 2),
//                threshold refinement at exit (Algorithm 1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "apps/benchmark_spec.hpp"
#include "common/log.hpp"
#include "compiler/xar_compiler.hpp"
#include "platform/testbed.hpp"
#include "runtime/migration_executor.hpp"
#include "runtime/scheduler_client.hpp"
#include "runtime/scheduler_server.hpp"
#include "runtime/threshold_table.hpp"

namespace xartrek::apps {

/// Which system hosts the run.
enum class SystemMode { kVanillaX86, kVanillaArm, kAlwaysFpga, kXarTrek };

[[nodiscard]] constexpr const char* to_string(SystemMode m) {
  switch (m) {
    case SystemMode::kVanillaX86: return "Vanilla Linux/x86";
    case SystemMode::kVanillaArm: return "Vanilla Linux/ARM";
    case SystemMode::kAlwaysFpga: return "Vanilla Linux/FPGA";
    case SystemMode::kXarTrek:    return "Xar-Trek";
  }
  return "?";
}

/// Non-owning view of one experiment's runtime stack.  The Xar-Trek
/// pieces (table/server/client) are null in vanilla modes.
struct RuntimeEnv {
  platform::Testbed* testbed = nullptr;
  runtime::MigrationExecutor* executor = nullptr;
  runtime::ThresholdTable* table = nullptr;
  runtime::SchedulerServer* server = nullptr;
  runtime::SchedulerClient* client = nullptr;
  /// Eager FPGA configuration at main start (ablation 1 switch).
  bool eager_configure = true;
  Logger log = {};
};

/// One completed run.
struct AppResult {
  std::string app;
  TimePoint started;
  TimePoint finished;
  runtime::Target func_target = runtime::Target::kX86;

  [[nodiscard]] Duration elapsed() const { return finished - started; }
};

/// Launches application runs.  All methods are static; per-run state
/// lives in a shared continuation chain inside the simulator.
class AppProcess {
 public:
  using ExitCallback = std::function<void(const AppResult&)>;

  /// Start one run now.  `on_exit` fires when the post phase completes.
  /// `trace_pid` is the run's trace context (carried to the scheduler in
  /// the placement request's pid field so its decision spans stitch to
  /// the submitting job; 0 = untracked); it does not affect execution.
  static void launch(const RuntimeEnv& env, const BenchmarkSpec& spec,
                     SystemMode mode, ExitCallback on_exit,
                     std::uint32_t trace_pid = 0);
};

}  // namespace xartrek::apps
