#include "apps/application.hpp"

#include <utility>

#include "common/assert.hpp"

namespace xartrek::apps {

namespace {

/// Shared per-run state threaded through the continuation chain.
struct RunState {
  RuntimeEnv env;
  BenchmarkSpec spec;
  SystemMode mode;
  AppProcess::ExitCallback on_exit;
  AppResult result;
  int observed_load = 0;
  std::uint32_t trace_pid = 0;  ///< trace context for the placement request
};

using StatePtr = std::shared_ptr<RunState>;

void finish(const StatePtr& st) {
  st->result.finished = st->env.testbed->simulation().now();
  // The process exits: it no longer counts toward its host's load.
  if (st->mode == SystemMode::kVanillaArm) {
    st->env.testbed->arm().detach_process();
  } else {
    st->env.testbed->x86().detach_process();
  }
  // Scheduler-client teardown hook (end of main): Algorithm 1 refines
  // the thresholds using the whole run's execution time, matching the
  // step-G scenario times stored in the table.
  if (st->mode == SystemMode::kXarTrek && st->env.client != nullptr) {
    runtime::RunObservation obs;
    obs.app = st->spec.name;
    obs.executed_on = st->result.func_target;
    obs.exec_time = st->result.elapsed();
    obs.x86_load = st->observed_load;
    st->env.client->on_function_return(obs);
  }
  st->on_exit(st->result);
}

void run_post_phase(const StatePtr& st) {
  auto& testbed = *st->env.testbed;
  if (st->mode == SystemMode::kVanillaArm) {
    testbed.arm().run(st->spec.post * st->spec.arm_phase_factor,
                      [st] { finish(st); });
  } else {
    testbed.x86().run(st->spec.post, [st] { finish(st); });
  }
}

void run_function_phase(const StatePtr& st) {
  auto& testbed = *st->env.testbed;
  const runtime::FunctionCosts costs = st->spec.function_costs();

  switch (st->mode) {
    case SystemMode::kVanillaX86: {
      st->result.func_target = runtime::Target::kX86;
      st->env.executor->execute(runtime::Target::kX86, costs,
                                [st](Duration) { run_post_phase(st); });
      return;
    }
    case SystemMode::kVanillaArm: {
      // The whole process lives on the ARM server: the function runs
      // there natively, with no migration traffic.
      st->result.func_target = runtime::Target::kArm;
      testbed.arm().run(st->spec.func_arm, [st] { run_post_phase(st); });
      return;
    }
    case SystemMode::kAlwaysFpga: {
      // Traditional flow: configure lazily at the first kernel call and
      // stall on it (paper §2, "Hardware Acceleration"), and pay the
      // per-call OpenCL initialization that instrumented binaries hoist
      // to main start.
      st->result.func_target = runtime::Target::kFpga;
      if (st->env.server != nullptr) {
        // The server owns the image registry (and, on a virtualized
        // device, the slot scheduler): ask it to make the kernel
        // resident instead of juggling raw XclbinImage pointers here.
        st->env.server->ensure_resident(st->spec.kernel_name);
      }
      runtime::FunctionCosts lazy_costs = costs;
      lazy_costs.xrt_call_overhead += st->spec.traditional_call_init;
      st->env.executor->execute(runtime::Target::kFpga, lazy_costs,
                                [st](Duration) { run_post_phase(st); },
                                /*wait_for_fpga=*/true);
      return;
    }
    case SystemMode::kXarTrek: {
      XAR_EXPECTS(st->env.server != nullptr);
      st->env.server->request_placement(
          st->spec.name, st->trace_pid,
          [st, costs](runtime::PlacementDecision decision) {
            st->result.func_target = decision.target;
            st->observed_load = decision.observed_load;
            st->env.executor->execute(
                decision.target, costs,
                [st](Duration) { run_post_phase(st); },
                decision.wait_for_fpga);
          });
      return;
    }
  }
  XAR_ASSERT(false);
}

void run_pre_phase(const StatePtr& st) {
  auto& testbed = *st->env.testbed;
  if (st->mode == SystemMode::kVanillaArm) {
    testbed.arm().run(st->spec.pre * st->spec.arm_phase_factor,
                      [st] { run_function_phase(st); });
  } else {
    testbed.x86().run(st->spec.pre, [st] { run_function_phase(st); });
  }
}

}  // namespace

void AppProcess::launch(const RuntimeEnv& env, const BenchmarkSpec& spec,
                        SystemMode mode, ExitCallback on_exit,
                        std::uint32_t trace_pid) {
  XAR_EXPECTS(env.testbed != nullptr && env.executor != nullptr);
  XAR_EXPECTS(on_exit != nullptr);
  if (mode == SystemMode::kXarTrek) {
    XAR_EXPECTS(env.server != nullptr && env.client != nullptr &&
                env.table != nullptr);
  }

  auto st = std::make_shared<RunState>(RunState{
      env, spec, mode, std::move(on_exit), AppResult{}, 0, trace_pid});
  st->result.app = spec.name;
  st->result.started = env.testbed->simulation().now();

  // The process becomes resident on its host server for its whole
  // lifetime -- including while its function is away on the ARM server
  // or the FPGA (the paper's load metric counts processes, Table 3).
  if (mode == SystemMode::kVanillaArm) {
    env.testbed->arm().attach_process();
  } else {
    env.testbed->x86().attach_process();
  }

  // Instrumented main start (Xar-Trek only): eager FPGA configuration,
  // so the kernel is warm by the time the function call arrives
  // (paper §3.1 step B; the Figure-6 advantage and ablation 1).
  if (mode == SystemMode::kXarTrek && env.eager_configure) {
    if (env.server->ensure_resident(spec.kernel_name)) {
      env.log.debug("app ", spec.name, ": eager-configuring for kernel ",
                    spec.kernel_name);
    }
  }
  run_pre_phase(st);
}

}  // namespace xartrek::apps
