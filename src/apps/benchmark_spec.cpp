#include "apps/benchmark_spec.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace xartrek::apps {

runtime::FunctionCosts BenchmarkSpec::function_costs() const {
  runtime::FunctionCosts costs;
  costs.x86_ms = func_x86;
  costs.arm_ms = func_arm;
  costs.migrate_bytes = migrate_bytes;
  costs.return_bytes = return_bytes;
  costs.transform_ms = transform;
  costs.kernel_name = kernel_name;
  costs.fpga_items = fpga_items;
  costs.fpga_input_bytes = fpga_input_bytes;
  costs.fpga_output_bytes = fpga_output_bytes;
  costs.xrt_call_overhead = xrt_call_overhead;
  return costs;
}

compiler::SelectedFunction BenchmarkSpec::selected_function() const {
  compiler::SelectedFunction sel;
  sel.function = function;
  sel.kernel_name = kernel_name;
  sel.input_bytes = fpga_input_bytes;
  sel.output_bytes = fpga_output_bytes;
  sel.items_per_call = fpga_items;
  return sel;
}

compiler::AppIr BenchmarkSpec::make_ir() const {
  return compiler::make_app_ir(name, function, total_loc, hot_loc,
                               rodata_bytes);
}

std::vector<BenchmarkSpec> paper_benchmarks() {
  std::vector<BenchmarkSpec> specs;

  // Derivations (all in ms; scenario totals must land on Table 1):
  //   vanilla      = pre + func_x86 + post
  //   x86/FPGA     = pre + post + xrt(1.5) + PCIe DMA + kernel
  //   x86/ARM      = pre + post + 2*transform(0.25) + Ethernet(in/out)
  //                  + func_arm
  // Kernel latency at 300 MHz = [II + irregular*stall(120)] * iterations
  // / 300e3, II = regular_body_ops / (4 * unroll).

  {
    // CG-A: Table 1 row 1 -- 2182 / 10597 / 8406.
    BenchmarkSpec s;
    s.name = "cg_a";
    s.function = "conj_grad";
    s.kernel_name = "KNL_HW_CG_A";
    s.pre = Duration::ms(60);
    s.post = Duration::ms(20);
    s.func_x86 = Duration::ms(2102);  // 2182 - 80
    // ARM: 8406 - 80 - 0.5 - eth(2.5 MiB -> 20.12) - eth(0.25 -> 2.12)
    s.func_arm = Duration::ms(8303.3);
    s.migrate_bytes = 2'621'440;  // CSR matrix + vectors (2.5 MiB)
    s.return_bytes = 262'144;
    // FPGA: kernel = 10597 - 80 - 1.5 - dma(0.07) = 10515.4 ms
    //  -> 3.1546e9 cycles; body fp2+int1+mem1 (II=1) + 4 irregular
    //     gathers (480 stall cycles) = 481 cycles/iter
    //  -> iterations = 6.559e6  (~25 CG steps x 14000 rows x ~18.7
    //     gather-equivalents; pointer chasing dominates, paper §4.4)
    s.fpga_input_bytes = 2'097'152;
    s.fpga_output_bytes = 112'000;
    s.fpga_items = 1;
    s.kernel_profile.ops =
        hls::OpProfile{1, 2, 1, 4, /*iterations_per_item=*/6.559e6};
    s.kernel_profile.unroll_factor = 1.0;
    s.kernel_profile.lines_of_code = 420;
    s.total_loc = 900;  // paper §4.5
    s.hot_loc = 420;
    specs.push_back(std::move(s));
  }
  {
    // FaceDet320: 175 / 332 / 642.
    BenchmarkSpec s;
    s.name = "facedet320";
    s.function = "detect_faces";
    s.kernel_name = "KNL_HW_FD320";
    s.pre = Duration::ms(18);
    s.post = Duration::ms(7);
    s.func_x86 = Duration::ms(150);  // 175 - 25
    // ARM: 642 - 25 - 0.5 - eth(0.4 MiB -> 3.32) - eth(0.05 -> 0.52)
    s.func_arm = Duration::ms(612.7);
    s.migrate_bytes = 419'430;
    s.return_bytes = 52'429;
    // FPGA: kernel = 332 - 25 - 1.5 - dma(~0.01) = 305.5 ms -> 9.165e7
    // cycles; body int10+mem8+fp2 -> II 5 -> 1.833e7 window-feature
    // iterations across the scale pyramid.
    s.fpga_input_bytes = 320ull * 240;  // the PGM frame
    s.fpga_output_bytes = 4'096;
    s.fpga_items = 1;
    s.kernel_profile.ops =
        hls::OpProfile{10, 2, 8, 0, /*iterations_per_item=*/1.833e7};
    s.kernel_profile.unroll_factor = 1.0;
    s.kernel_profile.lines_of_code = 180;
    s.total_loc = 350;
    s.hot_loc = 180;
    // Cascade coefficient tables; image data is read from files in the
    // measured builds (paper Figure 10 orders binaries by LOC, with
    // CG-A's 900 LOC the largest -- embedded payloads would invert it).
    s.rodata_bytes = 8 * 1024;
    specs.push_back(std::move(s));
  }
  {
    // FaceDet640: 885 / 832 / 2991.
    BenchmarkSpec s;
    s.name = "facedet640";
    s.function = "detect_faces";
    s.kernel_name = "KNL_HW_FD640";
    s.pre = Duration::ms(38);
    s.post = Duration::ms(15);
    s.func_x86 = Duration::ms(832);  // 885 - 53
    // ARM: 2991 - 53 - 0.5 - eth(1.5 MiB -> 12.12) - eth(0.1 -> 0.92)
    s.func_arm = Duration::ms(2924.5);
    s.migrate_bytes = 1'572'864;
    s.return_bytes = 104'858;
    // FPGA: kernel = 832 - 53 - 1.5 - dma(0.03) = 777.5 ms -> 2.3324e8
    // cycles; II 5 -> 4.665e7 iterations (4x pixels, on-chip tiling).
    s.fpga_input_bytes = 640ull * 480;
    s.fpga_output_bytes = 8'192;
    s.fpga_items = 1;
    s.kernel_profile.ops =
        hls::OpProfile{10, 2, 8, 0, /*iterations_per_item=*/4.665e7};
    s.kernel_profile.unroll_factor = 1.0;
    s.kernel_profile.lines_of_code = 180;
    s.total_loc = 380;
    s.hot_loc = 180;
    s.rodata_bytes = 8 * 1024;
    specs.push_back(std::move(s));
  }
  {
    // Digit500: 883 / 470 / 2281.
    BenchmarkSpec s;
    s.name = "digit500";
    s.function = "digitrec_kernel";
    s.kernel_name = "KNL_HW_DR500";
    s.pre = Duration::ms(25);
    s.post = Duration::ms(8);
    s.func_x86 = Duration::ms(850);  // 883 - 33
    // ARM: 2281 - 33 - 0.5 - eth(0.6 MiB -> 4.92) - eth(2 KiB -> 0.14)
    s.func_arm = Duration::ms(2242.4);
    s.migrate_bytes = 629'146;
    s.return_bytes = 2'048;
    // FPGA: kernel = 470 - 33 - 1.5 - dma(0.02) = 435.5 ms -> 1.3064e8
    // cycles over 500 test items; body int44+mem14 -> II 14.5 ->
    // iterations/item = 18020 ~= the 18000-digest training stream.
    s.fpga_input_bytes = 18'000ull * 32 + 500ull * 32;
    s.fpga_output_bytes = 2'048;
    s.fpga_items = 500;
    s.kernel_profile.ops =
        hls::OpProfile{44, 0, 14, 0, /*iterations_per_item=*/18'020};
    s.kernel_profile.unroll_factor = 1.0;
    s.kernel_profile.lines_of_code = 140;
    s.total_loc = 300;
    s.hot_loc = 140;
    s.rodata_bytes = 16 * 1024;  // constants; training set read from files
    specs.push_back(std::move(s));
  }
  {
    // Digit2000: 3521 / 1229 / 8963.
    BenchmarkSpec s;
    s.name = "digit2000";
    s.function = "digitrec_kernel";
    s.kernel_name = "KNL_HW_DR200";  // paper Table 2 spells it this way
    s.pre = Duration::ms(50);
    s.post = Duration::ms(21);
    s.func_x86 = Duration::ms(3450);  // 3521 - 71
    // ARM: 8963 - 71 - 0.5 - eth(0.61 MiB -> 5.0) - eth(0.14)
    s.func_arm = Duration::ms(8886.4);
    s.migrate_bytes = 639'631;
    s.return_bytes = 8'192;
    // FPGA: kernel = 1229 - 71 - 1.5 - dma(0.02) = 1156.5 ms ->
    // 3.4695e8 cycles over 2000 items; same body at unroll 1.5 ->
    // II 9.667 -> iterations/item = 17946 ~= 18000 again.  The two
    // digit kernels differing only in unrolling is consistent with the
    // paper shipping two separately-tuned XCLBIN kernels.
    s.fpga_input_bytes = 18'000ull * 32 + 2'000ull * 32;
    s.fpga_output_bytes = 8'192;
    s.fpga_items = 2'000;
    s.kernel_profile.ops =
        hls::OpProfile{44, 0, 14, 0, /*iterations_per_item=*/17'946};
    s.kernel_profile.unroll_factor = 1.5;
    s.kernel_profile.lines_of_code = 140;
    s.total_loc = 320;
    s.hot_loc = 140;
    s.rodata_bytes = 16 * 1024;
    specs.push_back(std::move(s));
  }
  return specs;
}

const BenchmarkSpec& benchmark_by_name(
    const std::vector<BenchmarkSpec>& specs, const std::string& name) {
  for (const auto& s : specs) {
    if (s.name == name) return s;
  }
  throw Error("unknown benchmark `" + name + "`");
}

compiler::ProfileSpec make_profile_spec(
    const std::vector<BenchmarkSpec>& specs) {
  compiler::ProfileSpec spec;
  spec.platform = "alveo-u50";
  for (const auto& s : specs) {
    compiler::ApplicationProfile app;
    app.name = s.name;
    app.functions.push_back(s.selected_function());
    spec.applications.push_back(std::move(app));
  }
  return spec;
}

std::map<std::string, compiler::KernelProfile> make_kernel_profiles(
    const std::vector<BenchmarkSpec>& specs) {
  std::map<std::string, compiler::KernelProfile> profiles;
  for (const auto& s : specs) profiles[s.kernel_name] = s.kernel_profile;
  return profiles;
}

std::map<std::string, compiler::AppIr> make_irs(
    const std::vector<BenchmarkSpec>& specs) {
  std::map<std::string, compiler::AppIr> irs;
  for (const auto& s : specs) irs[s.name] = s.make_ir();
  return irs;
}

Duration mg_b_run_demand() {
  // NPB MG class B (256^3 grid, 20 V-cycle iterations) takes ~9 s on one
  // Xeon Bronze core; the load generators loop runs of this demand.
  return Duration::seconds(9.0);
}

BfsTimes bfs_reference_times(int nodes) {
  XAR_EXPECTS(nodes >= 100);
  // x86 column: piecewise-linear through the paper's measured Table 4.
  struct Point {
    double n;
    double x86;
  };
  static constexpr Point kX86[] = {
      {1000, 3.36}, {2000, 115.74}, {3000, 256.94},
      {4000, 458.04}, {5000, 721.48},
  };
  const double n = static_cast<double>(nodes);
  double x86;
  if (n <= kX86[0].n) {
    x86 = kX86[0].x86 * n / kX86[0].n;
  } else {
    x86 = kX86[4].x86 * (n / kX86[4].n) * (n / kX86[4].n);  // extrapolate
    for (int i = 0; i < 4; ++i) {
      if (n <= kX86[i + 1].n) {
        const double t = (n - kX86[i].n) / (kX86[i + 1].n - kX86[i].n);
        x86 = kX86[i].x86 + t * (kX86[i + 1].x86 - kX86[i].x86);
        break;
      }
    }
  }
  // FPGA column: the measurements grow almost exactly quadratically
  // (level-synchronous rescans over host-resident data); fitting the
  // 1000/5000 endpoints gives t = 4.946e-4 n^2 + 0.2319 n, within ~7%
  // of the three interior measurements.
  const double fpga = 4.946e-4 * n * n + 0.2319 * n;
  return BfsTimes{nodes, Duration::ms(x86), Duration::ms(fpga)};
}

}  // namespace xartrek::apps
