// Background load generation.
//
// The paper generates medium/high CPU load by running n simultaneous
// instances of NPB MG class B while the measured application set
// executes (§4.1).  Each generator process loops MG-B runs on the x86
// cluster until stopped, occupying a run-queue slot and a fair share of
// the cores -- exactly what the scheduler's load metric sees.
#pragma once

#include <memory>
#include <vector>

#include "apps/benchmark_spec.hpp"
#include "common/time.hpp"
#include "platform/testbed.hpp"

namespace xartrek::apps {

/// A set of looping MG-B processes on the x86 server.
class LoadGenerator {
 public:
  /// Starts `processes` loops immediately.
  LoadGenerator(platform::Testbed& testbed, int processes,
                Duration run_demand = mg_b_run_demand());
  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;
  ~LoadGenerator() { stop(); }

  /// Cancel all loops (in-flight work is abandoned).  Idempotent.
  void stop();

  [[nodiscard]] int processes() const { return processes_; }
  [[nodiscard]] bool running() const { return *alive_; }

 private:
  void spawn_loop();

  platform::Testbed& testbed_;
  int processes_;
  Duration run_demand_;
  std::shared_ptr<bool> alive_;
  std::vector<hw::CpuCluster::JobId> current_jobs_;
};

}  // namespace xartrek::apps
