// Background load generation.
//
// The paper generates medium/high CPU load by running n simultaneous
// instances of NPB MG class B while the measured application set
// executes (§4.1).  Each generator process loops MG-B runs on the x86
// cluster until stopped, occupying a run-queue slot and a fair share of
// the cores -- exactly what the scheduler's load metric sees.
//
// Cancellation follows the engine's SlotPool idiom instead of a
// heap-allocated shared flag: every parked respawn callback carries the
// generation it was spawned under, and `stop()` bumps the generation,
// so a stale completion reads as inert.  One in-flight JobId per lane
// (overwritten on every respawn) keeps teardown exact without an
// ever-growing id list, and the whole generator performs zero heap
// allocations after construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "apps/benchmark_spec.hpp"
#include "common/time.hpp"
#include "platform/testbed.hpp"

namespace xartrek::apps {

/// A set of looping MG-B processes on the x86 server.
class LoadGenerator {
 public:
  struct Options {
    Duration run_demand = mg_b_run_demand();
    /// Per-lane demand spread (fraction): lane l loops runs of
    /// run_demand * (1 + demand_jitter * (l mod 8191) / 8191).  Zero
    /// keeps the paper's semantics (every lane identical); the cluster
    /// bench sets it so cohort completions pave the timeline instead
    /// of landing on one batched tick (the modulus is prime and larger
    /// than any bench cohort, so lanes get distinct demands).
    double demand_jitter = 0.0;
    /// Pre-grow the job pool and event heap to the cohort size so the
    /// attach burst performs no reallocation beyond the growth itself.
    bool reserve = false;
  };

  /// Starts `processes` loops immediately (one batched process-table
  /// attach for the whole cohort).
  LoadGenerator(platform::Testbed& testbed, int processes, Options opts);
  LoadGenerator(platform::Testbed& testbed, int processes,
                Duration run_demand)
      : LoadGenerator(testbed, processes, Options{run_demand}) {}
  LoadGenerator(platform::Testbed& testbed, int processes)
      : LoadGenerator(testbed, processes, Options{}) {}
  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;
  ~LoadGenerator() { stop(); }

  /// Cancel all loops (in-flight work is abandoned).  Idempotent.
  void stop();

  [[nodiscard]] int processes() const { return processes_; }
  [[nodiscard]] bool running() const { return running_; }

 private:
  [[nodiscard]] Duration lane_demand(std::uint32_t lane) const;
  void spawn(std::uint32_t lane);

  platform::Testbed& testbed_;
  int processes_;
  Options opts_;
  bool running_ = true;
  /// Generation-checked cancel token: respawn callbacks capture
  /// {this, lane, generation}; a bumped generation makes them inert.
  std::uint32_t generation_ = 1;
  /// The in-flight run of each lane (index = lane).
  std::vector<hw::CpuCluster::JobId> lanes_;
};

/// Cluster-scale background load: `total_jobs` looping MG-B processes
/// split across the cells of a partitioned cluster, one LoadGenerator
/// cohort per cell, each living entirely on that cell's shard.  All
/// bookkeeping is batched per shard -- one process-table update and
/// one pool reservation per cell instead of one per job -- so a
/// million-concurrent-job sweep costs one heap submit per job and
/// nothing else, and the per-cell event churn runs on the cells' own
/// queues instead of funneling through one CpuCluster process table.
class ShardedLoadGenerator {
 public:
  /// Same knobs as LoadGenerator::Options, but reservation defaults on
  /// (a cluster sweep's attach burst is the point).
  struct Options {
    Duration run_demand = mg_b_run_demand();
    double demand_jitter = 0.0;
    bool reserve = true;
  };

  /// Starts `total_jobs` loops spread round-robin over `cells` (cell i
  /// of n gets total/n jobs plus one of the remainder's first slots).
  ShardedLoadGenerator(std::vector<platform::Testbed*> cells,
                       std::uint64_t total_jobs, Options opts);
  ShardedLoadGenerator(std::vector<platform::Testbed*> cells,
                       std::uint64_t total_jobs)
      : ShardedLoadGenerator(std::move(cells), total_jobs, Options{}) {}
  ShardedLoadGenerator(const ShardedLoadGenerator&) = delete;
  ShardedLoadGenerator& operator=(const ShardedLoadGenerator&) = delete;
  ~ShardedLoadGenerator() { stop(); }

  /// Cancel every cohort (one batched process-table update per cell).
  /// Idempotent.
  void stop();

  [[nodiscard]] std::uint64_t total_jobs() const { return total_; }
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] std::uint64_t jobs_in_cell(std::size_t cell) const {
    return static_cast<std::uint64_t>(cells_[cell]->processes());
  }
  [[nodiscard]] bool running() const {
    return !cells_.empty() && cells_.front()->running();
  }

 private:
  std::uint64_t total_;
  std::vector<std::unique_ptr<LoadGenerator>> cells_;  ///< one per cell
};

}  // namespace xartrek::apps
