#include "apps/multi_image_app.hpp"

#include <memory>
#include <utility>

#include "common/assert.hpp"

namespace xartrek::apps {

namespace {

struct TputState {
  RuntimeEnv env;
  BenchmarkSpec spec;
  SystemMode mode;
  MultiImageConfig config;
  MultiImageFaceApp::ExitCallback on_exit;
  TimePoint started;
  int processed = 0;
  bool configured_eagerly = false;
};

using StatePtr = std::shared_ptr<TputState>;

void next_image(const StatePtr& st);

void finish(const StatePtr& st) {
  st->env.testbed->x86().detach_process();
  MultiImageResult result;
  result.images_processed = st->processed;
  result.elapsed = st->env.testbed->simulation().now() - st->started;
  st->on_exit(result);
}

void process_one(const StatePtr& st) {
  const runtime::FunctionCosts costs = st->spec.function_costs();
  auto done = [st](Duration) {
    ++st->processed;
    next_image(st);
  };

  switch (st->mode) {
    case SystemMode::kVanillaX86:
      st->env.executor->execute(runtime::Target::kX86, costs,
                                std::move(done));
      return;
    case SystemMode::kVanillaArm:
      st->env.executor->execute(runtime::Target::kArm, costs,
                                std::move(done));
      return;
    case SystemMode::kAlwaysFpga: {
      if (st->env.server != nullptr) {
        st->env.server->ensure_resident(st->spec.kernel_name);
      }
      // Per-call OpenCL initialization: the traditional flow re-creates
      // kernel handles/buffers each call; Xar-Trek hoists this to main
      // start (§3.1) -- the Figure 6 edge over always-FPGA.
      runtime::FunctionCosts lazy_costs = costs;
      lazy_costs.xrt_call_overhead += st->spec.traditional_call_init;
      st->env.executor->execute(runtime::Target::kFpga, lazy_costs,
                                std::move(done), /*wait_for_fpga=*/true);
      return;
    }
    case SystemMode::kXarTrek:
      st->env.server->request_placement(
          st->spec.name,
          [st, costs, done = std::move(done)](
              runtime::PlacementDecision decision) mutable {
            st->env.executor->execute(decision.target, costs,
                                      std::move(done),
                                      decision.wait_for_fpga);
          });
      return;
  }
  XAR_ASSERT(false);
}

void next_image(const StatePtr& st) {
  const TimePoint now = st->env.testbed->simulation().now();
  if (st->processed >= st->config.target_images ||
      now - st->started >= st->config.deadline) {
    finish(st);
    return;
  }
  // Read the next PGM from disk (x86 CPU + I/O cost), then detect.
  st->env.testbed->x86().run(st->config.io_per_image,
                             [st] { process_one(st); });
}

}  // namespace

void MultiImageFaceApp::launch(const RuntimeEnv& env,
                               const BenchmarkSpec& facedet, SystemMode mode,
                               const MultiImageConfig& config,
                               ExitCallback on_exit) {
  XAR_EXPECTS(env.testbed != nullptr && env.executor != nullptr);
  XAR_EXPECTS(on_exit != nullptr);
  XAR_EXPECTS(config.target_images > 0);
  if (mode == SystemMode::kXarTrek) {
    XAR_EXPECTS(env.server != nullptr);
  }

  auto st = std::make_shared<TputState>(
      TputState{env, facedet, mode, config, std::move(on_exit),
                env.testbed->simulation().now(), 0, false});
  // Resident on the x86 host for the whole throughput run (even while
  // images are away on the FPGA): the paper's process-count load metric.
  env.testbed->x86().attach_process();

  // Eager configuration at main start (Xar-Trek): by the time the x86
  // load crosses the threshold, the kernel is already resident -- this
  // is why Figure 6 shows Xar-Trek beating even the always-FPGA flow.
  if (mode == SystemMode::kXarTrek && env.eager_configure) {
    if (env.server->ensure_resident(facedet.kernel_name)) {
      st->configured_eagerly = true;
    }
  }
  next_image(st);
}

}  // namespace xartrek::apps
