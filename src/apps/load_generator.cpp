#include "apps/load_generator.hpp"

#include <limits>

#include "common/assert.hpp"

namespace xartrek::apps {

LoadGenerator::LoadGenerator(platform::Testbed& testbed, int processes,
                             Options opts)
    : testbed_(testbed), processes_(processes), opts_(opts) {
  XAR_EXPECTS(processes >= 0);
  XAR_EXPECTS(opts_.run_demand > Duration::zero());
  XAR_EXPECTS(opts_.demand_jitter >= 0.0);
  // Batched bookkeeping: ONE process-table update (and, for cluster
  // sweeps, one pool/heap reservation) for the whole cohort, then one
  // O(log n) submit per job -- nothing else scales with the count.
  testbed_.x86().attach_processes(processes);
  if (opts_.reserve) {
    const auto n = static_cast<std::size_t>(processes);
    testbed_.x86().reserve_jobs(n + 16);
    testbed_.simulation().reserve_events(n + 64);
  }
  lanes_.resize(static_cast<std::size_t>(processes));
  for (std::uint32_t lane = 0;
       lane < static_cast<std::uint32_t>(processes); ++lane) {
    spawn(lane);
  }
}

Duration LoadGenerator::lane_demand(std::uint32_t lane) const {
  if (opts_.demand_jitter == 0.0) return opts_.run_demand;
  return opts_.run_demand * (1.0 + opts_.demand_jitter *
                                       static_cast<double>(lane % 8191) /
                                       8191.0);
}

void LoadGenerator::spawn(std::uint32_t lane) {
  // Each completed MG-B run immediately starts the next (the paper keeps
  // the n background instances alive throughout the measurement).  The
  // callback carries its spawn generation; after stop() bumps it, a
  // straggler that somehow survived the cancel sweep reads as inert
  // instead of resurrecting the loop.  {this, lane, gen} is trivially
  // copyable and fits the engine's inline buffer: no allocation.
  const std::uint32_t gen = generation_;
  lanes_[lane] = testbed_.x86().run(lane_demand(lane), [this, lane, gen] {
    if (gen != generation_) return;
    spawn(lane);
  });
}

void LoadGenerator::stop() {
  if (!running_) return;
  running_ = false;
  ++generation_;  // invalidate every parked respawn token
  for (auto id : lanes_) {
    testbed_.x86().cancel(id);  // false for a just-finished run: its
                                // respawn token is stale anyway
  }
  lanes_.clear();
  testbed_.x86().detach_processes(processes_);
}

// --- ShardedLoadGenerator ---------------------------------------------------

ShardedLoadGenerator::ShardedLoadGenerator(
    std::vector<platform::Testbed*> cells, std::uint64_t total_jobs,
    Options opts)
    : total_(total_jobs) {
  XAR_EXPECTS(!cells.empty());
  LoadGenerator::Options cell_opts;
  cell_opts.run_demand = opts.run_demand;
  cell_opts.demand_jitter = opts.demand_jitter;
  cell_opts.reserve = opts.reserve;
  const std::uint64_t n = cells.size();
  cells_.reserve(n);
  for (std::uint64_t c = 0; c < n; ++c) {
    const std::uint64_t jobs = total_jobs / n + (c < total_jobs % n ? 1 : 0);
    XAR_EXPECTS(jobs <= std::numeric_limits<int>::max());
    cells_.push_back(std::make_unique<LoadGenerator>(
        *cells[c], static_cast<int>(jobs), cell_opts));
  }
}

void ShardedLoadGenerator::stop() {
  for (auto& cell : cells_) cell->stop();
}

}  // namespace xartrek::apps
