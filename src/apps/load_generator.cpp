#include "apps/load_generator.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace xartrek::apps {

LoadGenerator::LoadGenerator(platform::Testbed& testbed, int processes,
                             Duration run_demand)
    : testbed_(testbed),
      processes_(processes),
      run_demand_(run_demand),
      alive_(std::make_shared<bool>(true)) {
  XAR_EXPECTS(processes >= 0);
  XAR_EXPECTS(run_demand > Duration::zero());
  current_jobs_.reserve(static_cast<std::size_t>(processes));
  for (int p = 0; p < processes; ++p) {
    testbed_.x86().attach_process();
    spawn_loop();
  }
}

void LoadGenerator::spawn_loop() {
  // Each completed MG-B run immediately starts the next (the paper keeps
  // the n background instances alive throughout the measurement).
  auto alive = alive_;
  const auto id = testbed_.x86().run(run_demand_, [this, alive] {
    if (!*alive) return;
    spawn_loop();
  });
  current_jobs_.push_back(id);
}

void LoadGenerator::stop() {
  if (!*alive_) return;
  *alive_ = false;
  for (auto id : current_jobs_) {
    testbed_.x86().cancel(id);  // returns false for already-finished runs
  }
  current_jobs_.clear();
  for (int p = 0; p < processes_; ++p) testbed_.x86().detach_process();
}

}  // namespace xartrek::apps
