// The multi-image face-detection application (paper §4.2).
//
// The original Rosetta benchmark embeds one image in the executable; the
// paper's modified version reads each image file (WIDER-converted PGMs)
// and processes a user-chosen number of images, calling the selected
// function once per image.  Throughput = images processed within a
// 60-second window.  This is the workload of Figures 6 and 8.
#pragma once

#include <functional>
#include <string>

#include "apps/application.hpp"
#include "apps/benchmark_spec.hpp"
#include "common/time.hpp"

namespace xartrek::apps {

/// Configuration of one throughput run.
struct MultiImageConfig {
  int target_images = 1000;
  Duration deadline = Duration::seconds(60);
  /// Per-image file read on the x86 host (the modification the paper
  /// made: images come from files, not the binary).
  Duration io_per_image = Duration::ms(2.0);
};

/// Result of one throughput run.
struct MultiImageResult {
  int images_processed = 0;
  Duration elapsed = Duration::zero();

  [[nodiscard]] double images_per_second() const {
    return elapsed <= Duration::zero()
               ? 0.0
               : images_processed / elapsed.to_seconds();
  }
};

/// The throughput application.
class MultiImageFaceApp {
 public:
  using ExitCallback = std::function<void(const MultiImageResult&)>;

  /// Run until `target_images` are done or the deadline passes (no new
  /// image starts after the deadline; the in-flight one completes and
  /// counts).  Per image: file I/O on x86, then the selected function on
  /// the system's placement choice.  The scheduler is consulted per
  /// image call in Xar-Trek mode; threshold refinement is not applied
  /// (the table's reference times describe the single-image app).
  static void launch(const RuntimeEnv& env, const BenchmarkSpec& facedet,
                     SystemMode mode, const MultiImageConfig& config,
                     ExitCallback on_exit);
};

}  // namespace xartrek::apps
