// High-level-synthesis toolchain model (the Vitis stand-in).
//
// Step D of the Xar-Trek pipeline hands each selected C function to the
// Xilinx Vitis compiler, which emits one XO (Xilinx object) per function
// containing the synthesized kernel plus its resource footprint.  This
// model reproduces the *interface and economics* of that step: a kernel's
// op profile determines its logic footprint and its pipelined latency.
// Two behaviours matter for the paper's results and are modelled
// explicitly:
//
//  * compute-dense kernels (digit recognition, face detection) pipeline
//    to a low initiation interval and beat the CPU;
//  * irregular/pointer-chasing kernels (BFS, CG's sparse gather) stall
//    on memory and run orders of magnitude slower than the CPU
//    (paper §4.4 and Table 4).
#pragma once

#include <cstdint>
#include <string>

#include "common/time.hpp"
#include "fpga/device.hpp"
#include "fpga/resources.hpp"

namespace xartrek::hls {

/// Operation counts of the kernel's innermost (pipelined) loop body,
/// plus the trip count per work item, as a profiling pass would report
/// them.  Resources scale with the *body* (that is what gets synthesized
/// into a datapath); latency scales with body cost x iterations.
struct OpProfile {
  std::uint64_t int_ops = 0;   ///< integer ALU ops per body iteration
  std::uint64_t fp_ops = 0;    ///< floating-point ops per body iteration
  std::uint64_t mem_ops = 0;   ///< on-chip memory accesses per iteration
  /// Irregular (data-dependent, pointer-chasing) off-chip accesses per
  /// iteration; each one stalls the pipeline for an off-chip round trip.
  std::uint64_t irregular_mem_ops = 0;
  /// Innermost-loop iterations executed per work item.
  double iterations_per_item = 1.0;
};

/// Data movement contract of one kernel invocation.
struct KernelInterface {
  std::uint64_t input_bytes = 0;   ///< host -> card per invocation
  std::uint64_t output_bytes = 0;  ///< card -> host per invocation
};

/// A selected C function, ready for synthesis.
struct KernelSource {
  std::string source_function;  ///< C symbol name
  std::string kernel_name;      ///< hardware kernel name (e.g. KNL_HW_FD320)
  int lines_of_code = 0;
  OpProfile ops;
  KernelInterface iface;
  double unroll_factor = 1.0;  ///< HLS optimization hint (>= 1)
  int compute_units = 1;       ///< Vitis `nk` replication (>= 1)
};

/// A synthesized Xilinx object: the step-D output.
struct XoFile {
  std::string kernel_name;
  std::string source_function;
  fpga::HwKernelConfig config;  ///< resources + latency model
  KernelInterface iface;
  std::uint64_t file_bytes = 0;
  Duration synthesis_walltime;  ///< how long "Vitis" ran (reported only)
};

/// HLS compilation options.
struct HlsOptions {
  double target_clock_mhz = 300.0;
  /// Cycles a pipeline stalls per irregular off-chip access (HBM round
  /// trip at kernel clock).
  double irregular_stall_cycles = 120.0;
  /// Effective scalar-op parallelism the scheduler extracts per cycle
  /// before unrolling.
  double baseline_ilp = 4.0;
};

/// The HLS compiler model.
class HlsCompiler {
 public:
  explicit HlsCompiler(HlsOptions opts = {});

  /// Synthesize one function.  Throws if the estimated footprint exceeds
  /// a full U50-class device (such a function cannot be selected).
  [[nodiscard]] XoFile compile(const KernelSource& src) const;

  [[nodiscard]] const HlsOptions& options() const { return opts_; }

 private:
  HlsOptions opts_;
};

}  // namespace xartrek::hls
