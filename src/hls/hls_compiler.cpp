#include "hls/hls_compiler.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace xartrek::hls {

HlsCompiler::HlsCompiler(HlsOptions opts) : opts_(opts) {
  XAR_EXPECTS(opts_.target_clock_mhz > 0.0);
  XAR_EXPECTS(opts_.baseline_ilp >= 1.0);
}

XoFile HlsCompiler::compile(const KernelSource& src) const {
  XAR_EXPECTS(!src.kernel_name.empty());
  XAR_EXPECTS(src.unroll_factor >= 1.0);

  const double unroll = src.unroll_factor;
  const OpProfile& ops = src.ops;

  // --- Resource model -----------------------------------------------
  // Control/interface baseline plus per-op logic, all scaled by the
  // unroll factor (replicated datapaths).
  fpga::FpgaResources res;
  const double lut_est =
      4'000.0 + unroll * (42.0 * static_cast<double>(ops.int_ops) +
                          210.0 * static_cast<double>(ops.fp_ops) +
                          24.0 * static_cast<double>(ops.mem_ops +
                                                     ops.irregular_mem_ops));
  res.luts = static_cast<std::uint64_t>(lut_est);
  res.ffs = static_cast<std::uint64_t>(lut_est * 1.45);
  res.dsps = static_cast<std::uint64_t>(
      std::ceil(unroll * 4.0 * static_cast<double>(ops.fp_ops)));
  // On-chip buffering for the streamed interface, double-buffered,
  // capped by a 256 KiB local working set (larger data streams through).
  const double buffer_bytes = std::min<double>(
      256.0 * 1024,
      static_cast<double>(src.iface.input_bytes + src.iface.output_bytes));
  res.brams = static_cast<std::uint64_t>(
      std::ceil(2.0 * buffer_bytes / 4608.0));  // 36Kb blocks
  res.urams = res.brams > 256 ? (res.brams - 256) / 8 : 0;

  if (!fpga::FpgaResources::fits_within(res, fpga::alveo_u50_total())) {
    throw Error("HLS: kernel `" + src.kernel_name +
                "` exceeds a full U50 device; cannot be selected");
  }

  // --- Latency model -------------------------------------------------
  // The body pipelines at baseline_ilp * unroll regular ops per cycle,
  // bounded below by an initiation interval of 1; irregular accesses
  // serialize with a full off-chip stall each.
  const double regular_ops = static_cast<double>(ops.int_ops + ops.fp_ops +
                                                 ops.mem_ops);
  const double ii_regular =
      std::max(1.0, regular_ops / (opts_.baseline_ilp * unroll));
  const double cycles_per_iter =
      ii_regular + static_cast<double>(ops.irregular_mem_ops) *
                       opts_.irregular_stall_cycles;

  fpga::HwKernelConfig cfg;
  cfg.name = src.kernel_name;
  cfg.resources = res;
  cfg.clock_mhz = opts_.target_clock_mhz;
  cfg.fixed_cycles = 2'000;  // pipeline fill + AXI control handshakes
  cfg.cycles_per_item = cycles_per_iter * ops.iterations_per_item;
  XAR_EXPECTS(src.compute_units >= 1);
  cfg.compute_units = src.compute_units;

  // --- Artifact economics ---------------------------------------------
  XoFile xo;
  xo.kernel_name = src.kernel_name;
  xo.source_function = src.source_function;
  xo.config = cfg;
  xo.iface = src.iface;
  // XO carries netlist + metadata: roughly proportional to logic.
  xo.file_bytes = 96 * 1024 + res.luts * 14 + res.dsps * 400;
  // Synthesis walltime grows with design size (minutes; reported only,
  // never simulated -- kernels are precompiled, like TornadoVM's
  // precompiled modules, paper §6).
  xo.synthesis_walltime =
      Duration::seconds(90.0 + static_cast<double>(res.luts) / 2'000.0);
  return xo;
}

}  // namespace xartrek::hls
