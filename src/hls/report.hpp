// Vitis-style utilization and latency reports.
//
// Step D/F artifacts in the real toolchain come with synthesis reports;
// operators read them to decide unrolling and XCLBIN grouping.  This
// module renders the equivalent for our XO files and XCLBIN specs.
#pragma once

#include <string>
#include <vector>

#include "fpga/device.hpp"
#include "hls/hls_compiler.hpp"
#include "hls/xclbin.hpp"

namespace xartrek::hls {

/// Per-kernel utilization against a platform's usable area, plus the
/// latency model summary -- one XO's "synthesis report".
[[nodiscard]] std::string utilization_report(const XoFile& xo,
                                             const fpga::FpgaSpec& platform);

/// Whole-image report: every kernel's share and the image's headroom.
[[nodiscard]] std::string xclbin_report(const XclbinSpec& spec,
                                        const fpga::FpgaSpec& platform);

}  // namespace xartrek::hls
