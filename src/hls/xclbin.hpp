// XCLBIN partitioning (step E) and generation (step F).
//
// Step E gathers the resource usage of every XO and the free area of the
// hardware platform (total fabric minus the static shell) and groups the
// kernels into as few XCLBIN images as possible; when everything fits in
// one image the FPGA never needs run-time reconfiguration between
// applications.  The partitioner supports both the automatic mode
// (first-fit decreasing over the dominant resource fraction) and the
// paper's manual mode, where the designer pins high-priority functions
// into the same image.
//
// Step F "implements" each group and emits a loadable XclbinImage with a
// size model (shell bitstream + per-kernel region bits).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fpga/device.hpp"
#include "fpga/resources.hpp"
#include "hls/hls_compiler.hpp"

namespace xartrek::hls {

/// One planned XCLBIN: which XOs it will contain.
struct XclbinSpec {
  std::string id;
  std::vector<XoFile> xos;

  [[nodiscard]] fpga::FpgaResources total_resources() const;
  [[nodiscard]] bool contains_kernel(const std::string& name) const;
};

/// Step E: groups XOs into XCLBIN specs subject to the platform's free
/// area.
class XclbinPartitioner {
 public:
  explicit XclbinPartitioner(fpga::FpgaSpec platform);

  /// Automatic partitioning: first-fit decreasing on the dominant
  /// resource fraction.  Throws if any single kernel exceeds the free
  /// area.  Produces deterministic ids "<prefix>0", "<prefix>1", ...
  [[nodiscard]] std::vector<XclbinSpec> partition(
      const std::vector<XoFile>& xos,
      const std::string& id_prefix = "xclbin") const;

  /// Manual partitioning: `groups[i]` lists the kernel names assigned to
  /// image i.  Throws if a name is unknown, duplicated, missing, or a
  /// group overflows the free area.
  [[nodiscard]] std::vector<XclbinSpec> partition_manual(
      const std::vector<XoFile>& xos,
      const std::vector<std::vector<std::string>>& groups,
      const std::string& id_prefix = "xclbin") const;

  [[nodiscard]] const fpga::FpgaSpec& platform() const { return platform_; }

 private:
  fpga::FpgaSpec platform_;
};

/// Step F: builds loadable images from specs.
class XclbinBuilder {
 public:
  explicit XclbinBuilder(fpga::FpgaSpec platform);

  /// Produce the device-loadable image for one spec.
  [[nodiscard]] fpga::XclbinImage build(const XclbinSpec& spec) const;

  /// Size of the kernel-region bits for one XO, excluding the shared
  /// shell bitstream: this is the marginal XCLBIN cost a single
  /// application is charged in the Figure-10 accounting.
  [[nodiscard]] std::uint64_t kernel_region_bytes(const XoFile& xo) const;

 private:
  fpga::FpgaSpec platform_;
};

}  // namespace xartrek::hls
