#include "hls/xclbin.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/assert.hpp"

namespace xartrek::hls {

fpga::FpgaResources XclbinSpec::total_resources() const {
  fpga::FpgaResources sum;
  for (const auto& xo : xos) {
    // Replicated compute units each claim a full copy of the kernel.
    for (int cu = 0; cu < xo.config.compute_units; ++cu) {
      sum += xo.config.resources;
    }
  }
  return sum;
}

bool XclbinSpec::contains_kernel(const std::string& name) const {
  return std::any_of(xos.begin(), xos.end(), [&](const XoFile& xo) {
    return xo.kernel_name == name;
  });
}

XclbinPartitioner::XclbinPartitioner(fpga::FpgaSpec platform)
    : platform_(std::move(platform)) {}

std::vector<XclbinSpec> XclbinPartitioner::partition(
    const std::vector<XoFile>& xos, const std::string& id_prefix) const {
  const fpga::FpgaResources cap = platform_.usable();

  // First-fit decreasing: largest dominant-fraction kernels first.
  std::vector<XoFile> order = xos;
  std::stable_sort(order.begin(), order.end(),
                   [&](const XoFile& a, const XoFile& b) {
                     return a.config.resources.dominant_fraction(cap) >
                            b.config.resources.dominant_fraction(cap);
                   });

  std::vector<XclbinSpec> bins;
  for (const auto& xo : order) {
    XclbinSpec alone;
    alone.xos.push_back(xo);
    if (!fpga::FpgaResources::fits_within(alone.total_resources(), cap)) {
      throw Error("XCLBIN partitioning: kernel `" + xo.kernel_name +
                  "` alone exceeds the platform's free area");
    }
    bool placed = false;
    for (auto& bin : bins) {
      if (fpga::FpgaResources::fits_within(
              bin.total_resources() + alone.total_resources(), cap)) {
        bin.xos.push_back(xo);
        placed = true;
        break;
      }
    }
    if (!placed) {
      XclbinSpec spec;
      spec.id = id_prefix + std::to_string(bins.size());
      spec.xos.push_back(xo);
      bins.push_back(std::move(spec));
    }
  }
  return bins;
}

std::vector<XclbinSpec> XclbinPartitioner::partition_manual(
    const std::vector<XoFile>& xos,
    const std::vector<std::vector<std::string>>& groups,
    const std::string& id_prefix) const {
  auto find_xo = [&](const std::string& name) -> const XoFile& {
    for (const auto& xo : xos) {
      if (xo.kernel_name == name) return xo;
    }
    throw Error("XCLBIN manual partitioning: unknown kernel `" + name + "`");
  };

  std::set<std::string> assigned;
  std::vector<XclbinSpec> bins;
  const fpga::FpgaResources cap = platform_.usable();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    XclbinSpec spec;
    spec.id = id_prefix + std::to_string(g);
    for (const auto& name : groups[g]) {
      if (!assigned.insert(name).second) {
        throw Error("XCLBIN manual partitioning: kernel `" + name +
                    "` assigned twice");
      }
      spec.xos.push_back(find_xo(name));
    }
    if (!fpga::FpgaResources::fits_within(spec.total_resources(), cap)) {
      throw Error("XCLBIN manual partitioning: group " + spec.id +
                  " exceeds the platform's free area");
    }
    bins.push_back(std::move(spec));
  }
  if (assigned.size() != xos.size()) {
    throw Error("XCLBIN manual partitioning: not every kernel was assigned");
  }
  return bins;
}

XclbinBuilder::XclbinBuilder(fpga::FpgaSpec platform)
    : platform_(std::move(platform)) {}

std::uint64_t XclbinBuilder::kernel_region_bytes(const XoFile& xo) const {
  // Configuration bits scale with claimed logic: ~120 bits per LUT site
  // (frame-quantized), plus initialized BRAM contents.
  const auto& r = xo.config.resources;
  return r.luts * 15 + r.ffs * 2 + r.brams * 4608 + r.dsps * 200;
}

fpga::XclbinImage XclbinBuilder::build(const XclbinSpec& spec) const {
  XAR_EXPECTS(!spec.xos.empty());
  fpga::XclbinImage image;
  image.id = spec.id;
  // Shared shell bitstream + header/metadata base.
  std::uint64_t size = 2 * 1024 * 1024;
  for (const auto& xo : spec.xos) {
    image.kernels.push_back(xo.config);
    size += kernel_region_bytes(xo);
  }
  image.size_bytes = size;
  return image;
}

}  // namespace xartrek::hls
