#include "hls/report.hpp"

#include <sstream>

#include "common/table.hpp"

namespace xartrek::hls {

namespace {
[[nodiscard]] std::string pct(std::uint64_t used, std::uint64_t avail) {
  if (avail == 0) return "-";
  return TextTable::num(100.0 * static_cast<double>(used) /
                            static_cast<double>(avail),
                        1) +
         "%";
}
}  // namespace

std::string utilization_report(const XoFile& xo,
                               const fpga::FpgaSpec& platform) {
  const fpga::FpgaResources cap = platform.usable();
  const fpga::FpgaResources& r = xo.config.resources;

  TextTable table("Synthesis report: " + xo.kernel_name + " (from " +
                  xo.source_function + ")");
  table.set_header({"resource", "used (per CU)", "available", "util"});
  table.add_row({"LUT", std::to_string(r.luts), std::to_string(cap.luts),
                 pct(r.luts, cap.luts)});
  table.add_row({"FF", std::to_string(r.ffs), std::to_string(cap.ffs),
                 pct(r.ffs, cap.ffs)});
  table.add_row({"BRAM", std::to_string(r.brams), std::to_string(cap.brams),
                 pct(r.brams, cap.brams)});
  table.add_row({"URAM", std::to_string(r.urams), std::to_string(cap.urams),
                 pct(r.urams, cap.urams)});
  table.add_row({"DSP", std::to_string(r.dsps), std::to_string(cap.dsps),
                 pct(r.dsps, cap.dsps)});

  std::ostringstream os;
  os << table.render();
  os << "clock: " << xo.config.clock_mhz << " MHz, compute units: "
     << xo.config.compute_units << "\n";
  os << "latency: " << xo.config.fixed_cycles << " + "
     << TextTable::num(xo.config.cycles_per_item, 1)
     << " cycles/item  (~"
     << TextTable::num(fpga::kernel_latency(xo.config, 1).to_ms(), 2)
     << " ms for one item)\n";
  os << "synthesis walltime: "
     << TextTable::num(xo.synthesis_walltime.to_seconds(), 0) << " s, XO "
     << xo.file_bytes / 1024 << " KiB\n";
  return os.str();
}

std::string xclbin_report(const XclbinSpec& spec,
                          const fpga::FpgaSpec& platform) {
  const fpga::FpgaResources cap = platform.usable();
  TextTable table("XCLBIN plan: " + spec.id + " on " + platform.model);
  table.set_header({"kernel", "CUs", "LUT", "BRAM", "DSP",
                    "dominant util"});
  for (const auto& xo : spec.xos) {
    const auto& r = xo.config.resources;
    table.add_row({xo.kernel_name, std::to_string(xo.config.compute_units),
                   std::to_string(r.luts), std::to_string(r.brams),
                   std::to_string(r.dsps),
                   TextTable::num(100.0 * r.dominant_fraction(cap), 1) +
                       "%"});
  }
  const auto total = spec.total_resources();
  std::ostringstream os;
  os << table.render();
  os << "image total: LUT " << pct(total.luts, cap.luts) << ", BRAM "
     << pct(total.brams, cap.brams) << ", DSP " << pct(total.dsps, cap.dsps)
     << " of the usable region\n";
  return os.str();
}

}  // namespace xartrek::hls
