// x86 CPU-load monitor.
//
// Algorithm 2 line 3: "Start timer to read x86LOAD".  The scheduler
// server does not inspect the run queue at decision time; it uses the
// last timer sample, exactly like the real implementation reads a
// periodically-refreshed load figure.  Load is the paper's metric: the
// number of resident processes on the x86 server (Table 3).
#pragma once

#include "common/time.hpp"
#include "hw/cpu_cluster.hpp"
#include "sim/simulation.hpp"

namespace xartrek::runtime {

/// Periodic sampler of an x86 cluster's process count.
class LoadMonitor {
 public:
  /// Starts sampling immediately and then every `period`.  The default
  /// is fine enough that a just-launched application is visible to the
  /// very next placement decision (the paper counts every running
  /// application instantly in its load figure).
  LoadMonitor(sim::Simulation& sim, const hw::CpuCluster& x86,
              Duration period = Duration::ms(10.0));
  LoadMonitor(const LoadMonitor&) = delete;
  LoadMonitor& operator=(const LoadMonitor&) = delete;
  ~LoadMonitor() { tick_.cancel(); }

  /// The last sampled x86 load.
  [[nodiscard]] int x86_load() const { return last_sample_; }

  /// Samples taken so far (tests).
  [[nodiscard]] std::uint64_t samples() const { return samples_; }

  [[nodiscard]] Duration period() const { return period_; }

 private:
  void sample();

  sim::Simulation& sim_;
  const hw::CpuCluster& x86_;
  Duration period_;
  int last_sample_ = 0;
  std::uint64_t samples_ = 0;
  sim::Simulation::EventHandle tick_;
};

}  // namespace xartrek::runtime
