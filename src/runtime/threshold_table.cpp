#include "runtime/threshold_table.hpp"

#include <utility>

namespace xartrek::runtime {

AppId ThresholdTable::upsert(ThresholdEntry entry) {
  XAR_EXPECTS(!entry.app.empty());
  XAR_EXPECTS(entry.fpga_threshold >= 0 && entry.arm_threshold >= 0);
  const auto it = index_.find(entry.app);
  if (it != index_.end()) {
    const AppId id = it->second;
    entries_[id] = std::move(entry);
    return id;
  }
  XAR_ASSERT(entries_.size() < kInvalidAppId);
  const AppId id = static_cast<AppId>(entries_.size());
  index_.emplace(entry.app, id);
  entries_.push_back(std::move(entry));
  return id;
}

const ThresholdEntry& ThresholdTable::at(std::string_view app) const {
  const AppId id = id_of(app);
  if (id == kInvalidAppId) {
    throw Error("threshold table has no entry for `" + std::string(app) +
                "`");
  }
  return entries_[id];
}

ThresholdEntry& ThresholdTable::at_mutable(std::string_view app) {
  const AppId id = id_of(app);
  if (id == kInvalidAppId) {
    throw Error("threshold table has no entry for `" + std::string(app) +
                "`");
  }
  return entries_[id];
}

std::vector<std::string> ThresholdTable::app_names() const {
  std::vector<std::string> names;
  names.reserve(index_.size());
  for (const auto& [name, id] : index_) names.push_back(name);
  return names;
}

}  // namespace xartrek::runtime
