#include "runtime/threshold_table.hpp"

#include <utility>

namespace xartrek::runtime {

void ThresholdTable::upsert(ThresholdEntry entry) {
  XAR_EXPECTS(!entry.app.empty());
  XAR_EXPECTS(entry.fpga_threshold >= 0 && entry.arm_threshold >= 0);
  entries_[entry.app] = std::move(entry);
}

const ThresholdEntry& ThresholdTable::at(const std::string& app) const {
  auto it = entries_.find(app);
  if (it == entries_.end()) {
    throw Error("threshold table has no entry for `" + app + "`");
  }
  return it->second;
}

ThresholdEntry& ThresholdTable::at_mutable(const std::string& app) {
  auto it = entries_.find(app);
  if (it == entries_.end()) {
    throw Error("threshold table has no entry for `" + app + "`");
  }
  return it->second;
}

std::vector<std::string> ThresholdTable::app_names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, e] : entries_) names.push_back(name);
  return names;
}

}  // namespace xartrek::runtime
