// Scheduler wire protocol.
//
// The paper's scheduler is split between per-application clients and a
// server on the x86 host, communicating over sockets (§3.2).  This
// module defines the message set and a compact binary codec:
//
//   PlacementRequest   client -> server   "where should <app> run?"
//   PlacementReply     server -> client   the migration-flag value
//   ThresholdReport    client -> server   Algorithm-1 observation
//   TableSync          server -> client   full threshold-table row
//
// Framing: every message starts with a fixed 8-byte header (magic,
// version, type, payload length).  Integers are little-endian; strings
// are length-prefixed.  The codec is strict: trailing bytes, truncated
// payloads, bad magic/version/type all throw xartrek::Error -- a
// scheduler must not act on a mangled request.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/time.hpp"
#include "runtime/target.hpp"
#include "runtime/threshold_table.hpp"

namespace xartrek::runtime {

/// Message type tags (wire values are stable).
enum class MessageType : std::uint8_t {
  kPlacementRequest = 1,
  kPlacementReply = 2,
  kThresholdReport = 3,
  kTableSync = 4,
};

/// Client -> server: ask for a placement decision.
struct PlacementRequestMsg {
  std::string app;
  std::string kernel;
  /// Client process id -- doubles as the trace context: a tracked job's
  /// trace id (cluster job id + 1) rides here so the server's decision
  /// spans stitch to the submitting job's.  0 = untracked.
  std::uint32_t pid = 0;

  bool operator==(const PlacementRequestMsg&) const = default;
};

/// Server -> client: the decision (the migration-flag value).
struct PlacementReplyMsg {
  Target target = Target::kX86;
  bool wait_for_fpga = false;
  std::int32_t observed_load = 0;

  bool operator==(const PlacementReplyMsg&) const = default;
};

/// Client -> server: an Algorithm-1 observation (on function return).
struct ThresholdReportMsg {
  std::string app;
  Target executed_on = Target::kX86;
  double exec_time_ms = 0.0;
  std::int32_t x86_load = 0;

  bool operator==(const ThresholdReportMsg&) const = default;
};

/// Server -> client: a threshold-table row (table synchronization).
struct TableSyncMsg {
  ThresholdEntry entry;

  bool operator==(const TableSyncMsg& o) const {
    return entry.app == o.entry.app &&
           entry.kernel_name == o.entry.kernel_name &&
           entry.fpga_threshold == o.entry.fpga_threshold &&
           entry.arm_threshold == o.entry.arm_threshold &&
           entry.x86_exec == o.entry.x86_exec &&
           entry.arm_exec == o.entry.arm_exec &&
           entry.fpga_exec == o.entry.fpga_exec;
  }
};

/// Any protocol message.
using Message = std::variant<PlacementRequestMsg, PlacementReplyMsg,
                             ThresholdReportMsg, TableSyncMsg>;

// --- borrowed decode --------------------------------------------------------
//
// The owning decode copies every string field into a std::string, which
// is the last allocation on the server's steady-state request path.
// The *View structs instead alias the frame: their string_view fields
// point straight into the caller's buffer and are valid exactly as long
// as that buffer is neither freed nor overwritten.  The server resolves
// them against the interned AppId/kernel indexes without materializing
// a single std::string.

/// Borrowed PlacementRequest: fields alias the decoded frame.
struct PlacementRequestView {
  std::string_view app;
  std::string_view kernel;
  std::uint32_t pid = 0;
};

/// Borrowed ThresholdReport: `app` aliases the decoded frame.
struct ThresholdReportView {
  std::string_view app;
  Target executed_on = Target::kX86;
  double exec_time_ms = 0.0;
  std::int32_t x86_load = 0;
};

/// Borrowed TableSync: name fields alias the decoded frame.
struct TableSyncView {
  std::string_view app;
  std::string_view kernel_name;
  std::int32_t fpga_threshold = 0;
  std::int32_t arm_threshold = 0;
  double x86_exec_ms = 0.0;
  double arm_exec_ms = 0.0;
  double fpga_exec_ms = 0.0;
};

/// Any protocol message, borrowed.  PlacementReply has no string fields,
/// so the owning struct doubles as its view.
using MessageView = std::variant<PlacementRequestView, PlacementReplyMsg,
                                 ThresholdReportView, TableSyncView>;

/// Parse one framed message without copying any string field: the views
/// in the result alias `buffer`.  Identical strictness to
/// decode_message (bad magic, unsupported version, unknown type,
/// truncation, trailing bytes all throw xartrek::Error).
[[nodiscard]] MessageView decode_message_view(
    std::span<const std::byte> buffer);

/// Materialize a borrowed message into an owning one (copies the string
/// fields; the view's backing buffer may die afterwards).
[[nodiscard]] Message to_owning(const MessageView& view);

/// Serialize a message into a framed byte buffer.
[[nodiscard]] std::vector<std::byte> encode_message(const Message& message);

/// Serialize into a reusable buffer: clears `out`, then writes the
/// framed message in one pass (the header's length field is reserved up
/// front and patched in place).  `out` keeps its capacity, so a
/// per-connection scratch buffer makes steady-state encoding
/// allocation-free.
void encode_message_into(const Message& message, std::vector<std::byte>& out);

/// Frame one TableSync row straight from a table entry, without
/// materializing a Message (the broadcast path encodes every row of the
/// threshold table back to back).
void encode_table_sync_into(const ThresholdEntry& entry,
                            std::vector<std::byte>& out);

/// Frame one PlacementRequest straight from borrowed fields, without
/// materializing a Message, appending to `out` without clearing it:
/// same-instant requests pack back to back into one arena buffer, which
/// the batch decoder below consumes in a single pass.  (Clear `out`
/// first for a standalone frame.)
void encode_placement_request_append(std::string_view app,
                                     std::string_view kernel,
                                     std::uint32_t pid,
                                     std::vector<std::byte>& out);

/// Vectorized batch decode: parse `count` back-to-back PlacementRequest
/// frames from `arena` in one pass, appending a borrowed view per frame
/// to `out` (cleared first; capacity kept).  Equivalent to calling
/// decode_message_view per frame -- same strictness (bad magic/version,
/// wrong type, truncation, trailing bytes all throw) -- but skips the
/// per-frame variant construction and dispatch, so a spike tick's whole
/// arena decodes at streaming speed.  The views alias `arena`.
void decode_placement_request_arena(std::span<const std::byte> arena,
                                    std::size_t count,
                                    std::vector<PlacementRequestView>& out);

/// Parse one framed message.  Throws xartrek::Error on bad magic,
/// unsupported version, unknown type, truncation, or trailing bytes.
[[nodiscard]] Message decode_message(std::span<const std::byte> buffer);

/// The message type a framed buffer claims to carry (header peek);
/// throws on a malformed header.
[[nodiscard]] MessageType peek_message_type(std::span<const std::byte> buffer);

/// Wire constants, exposed for tests.
inline constexpr std::uint16_t kProtocolMagic = 0x5854;  // "XT"
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 8;

}  // namespace xartrek::runtime
