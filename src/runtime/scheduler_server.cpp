#include "runtime/scheduler_server.hpp"

#include <utility>

#include "common/assert.hpp"
#include "runtime/protocol.hpp"

namespace xartrek::runtime {

Target decide_placement(int x86_load, int arm_threshold, int fpga_threshold,
                        bool hw_kernel_available, bool& wants_reconfigure) {
  wants_reconfigure = false;
  const bool above_arm = x86_load > arm_threshold;

  // FPGA threshold respected: only the ARM threshold matters
  // (Algorithm 2 lines 19-24).
  if (x86_load <= fpga_threshold) {
    return above_arm ? Target::kArm : Target::kX86;
  }
  // Past FPGA_THR with no resident kernel: configure in the background
  // and keep running on a CPU meanwhile (lines 9-18).
  if (!hw_kernel_available) {
    wants_reconfigure = true;
    return above_arm ? Target::kArm : Target::kX86;
  }
  // Past FPGA_THR with the kernel resident; the smaller threshold
  // implies the smaller execution time on that target (lines 25-31).
  return fpga_threshold < arm_threshold ? Target::kFpga : Target::kArm;
}

std::string explain_placement(int x86_load, int arm_threshold,
                              int fpga_threshold,
                              bool hw_kernel_available) {
  bool wants_reconfigure = false;
  const Target target = decide_placement(
      x86_load, arm_threshold, fpga_threshold, hw_kernel_available,
      wants_reconfigure);
  std::string why;
  const std::string load = "load " + std::to_string(x86_load);
  const std::string thrs = " (ARM_THR " + std::to_string(arm_threshold) +
                           ", FPGA_THR " + std::to_string(fpga_threshold) +
                           ")";
  if (!hw_kernel_available && wants_reconfigure) {
    why = load + " exceeds FPGA_THR but the kernel is not resident" + thrs +
          "; running on " + to_string(target) +
          " while the XCLBIN loads in the background [lines " +
          (target == Target::kX86 ? "9-13" : "14-18") + "]";
  } else if (target == Target::kX86) {
    why = load + " within both thresholds" + thrs +
          "; staying on x86 [lines 19-21]";
  } else if (target == Target::kArm) {
    why = x86_load <= fpga_threshold
              ? load + " exceeds only ARM_THR" + thrs +
                    "; migrating to ARM [lines 22-24]"
              : load + " exceeds FPGA_THR with the kernel resident, but "
                    "ARM_THR < FPGA_THR implies ARM is the faster "
                    "target" +
                    thrs + " [lines 25-31]";
  } else {
    why = load + " exceeds FPGA_THR, kernel resident, FPGA_THR < ARM_THR" +
          thrs + "; migrating to the FPGA [lines 25-31]";
  }
  return why;
}

SchedulerServer::SchedulerServer(sim::Simulation& sim, LoadMonitor& monitor,
                                 fpga::FpgaDevice& device,
                                 ThresholdTable& table,
                                 std::vector<fpga::XclbinImage> xclbins,
                                 Options opts, Logger log)
    : sim_(sim),
      monitor_(monitor),
      device_(device),
      table_(table),
      xclbins_(std::move(xclbins)),
      opts_(opts),
      log_(std::move(log)) {}

std::vector<std::vector<std::byte>> SchedulerServer::broadcast_table()
    const {
  std::vector<std::vector<std::byte>> frames(table_.size());
  std::size_t i = 0;
  for (const ThresholdEntry& entry : table_.entries()) {
    encode_table_sync_into(entry, frames[i++]);
  }
  return frames;
}

const fpga::XclbinImage* SchedulerServer::image_with(
    const std::string& kernel) const {
  for (const auto& image : xclbins_) {
    if (image.contains_kernel(kernel)) return &image;
  }
  return nullptr;
}

void SchedulerServer::maybe_start_reconfiguration(const std::string& kernel) {
  if (device_.reconfiguring()) return;  // one download at a time
  const fpga::XclbinImage* image = image_with(kernel);
  if (image == nullptr) {
    log_.warn("server: no XCLBIN provides kernel ", kernel);
    return;
  }
  ++stats_.reconfigurations_started;
  log_.info("server: reconfiguring FPGA with ", image->id, " for kernel ",
            kernel);
  device_.reconfigure(*image, [this, id = image->id] {
    log_.debug("server: reconfiguration ", id, " complete");
  });
}

std::vector<std::byte> SchedulerServer::acquire_wire_buffer() {
  if (wire_pool_.empty()) return {};
  std::vector<std::byte> buffer = std::move(wire_pool_.back());
  wire_pool_.pop_back();
  return buffer;
}

void SchedulerServer::recycle_wire_buffer(std::vector<std::byte>&& buffer) {
  wire_pool_.push_back(std::move(buffer));
}

void SchedulerServer::request_placement(const std::string& app,
                                        DecisionCallback on_decision) {
  XAR_EXPECTS(on_decision != nullptr);
  // The client marshals its request over the socket; the server decodes
  // it after the round-trip delay.  Running the real codec on every
  // request keeps the wire format honest in every experiment.  The wire
  // bytes travel in a pooled scratch buffer that returns to the pool
  // after decoding, so steady-state traffic reuses a few warm buffers
  // instead of allocating per request.
  std::vector<std::byte> wire = acquire_wire_buffer();
  encode_message_into(PlacementRequestMsg{app, /*kernel=*/"", /*pid=*/0},
                      wire);
  sim_.schedule_in(opts_.request_overhead, [this, wire = std::move(wire),
                                            cb = std::move(
                                                on_decision)]() mutable {
    ++stats_.requests;
    const auto request =
        std::get<PlacementRequestMsg>(decode_message(wire));
    recycle_wire_buffer(std::move(wire));
    const std::string& app = request.app;
    const ThresholdEntry& entry = table_.at(app);
    const int load = monitor_.x86_load();
    const bool kernel_ready = device_.has_kernel(entry.kernel_name);

    PlacementDecision decision;
    decision.observed_load = load;

    bool wants_reconfigure = false;
    decision.target =
        decide_placement(load, entry.arm_threshold, entry.fpga_threshold,
                         kernel_ready, wants_reconfigure);

    if (wants_reconfigure) {
      const bool was_reconfiguring = device_.reconfiguring();
      maybe_start_reconfiguration(entry.kernel_name);
      decision.reconfiguration_started = !was_reconfiguring;
      if (!opts_.hide_reconfiguration &&
          load > entry.fpga_threshold &&
          entry.fpga_threshold < entry.arm_threshold) {
        // Blocking ablation: the traditional flow stalls the caller on
        // the configuration instead of running elsewhere meanwhile.
        decision.target = Target::kFpga;
        decision.wait_for_fpga = true;
      }
    }

    switch (decision.target) {
      case Target::kX86:  ++stats_.to_x86; break;
      case Target::kArm:  ++stats_.to_arm; break;
      case Target::kFpga: ++stats_.to_fpga; break;
    }
    log_.trace("server: app=", app, " load=", load, " -> ",
               to_string(decision.target));
    cb(decision);
  });
}

}  // namespace xartrek::runtime
