#include "runtime/scheduler_server.hpp"

#include <exception>
#include <utility>

#include "common/assert.hpp"
#include "obs/registry.hpp"
#include "runtime/protocol.hpp"

namespace xartrek::runtime {

Target decide_placement(int x86_load, int arm_threshold, int fpga_threshold,
                        bool hw_kernel_available, bool& wants_reconfigure) {
  wants_reconfigure = false;
  const bool above_arm = x86_load > arm_threshold;

  // FPGA threshold respected: only the ARM threshold matters
  // (Algorithm 2 lines 19-24).
  if (x86_load <= fpga_threshold) {
    return above_arm ? Target::kArm : Target::kX86;
  }
  // Past FPGA_THR with no resident kernel: configure in the background
  // and keep running on a CPU meanwhile (lines 9-18).
  if (!hw_kernel_available) {
    wants_reconfigure = true;
    return above_arm ? Target::kArm : Target::kX86;
  }
  // Past FPGA_THR with the kernel resident; the smaller threshold
  // implies the smaller execution time on that target (lines 25-31).
  return fpga_threshold < arm_threshold ? Target::kFpga : Target::kArm;
}

std::string explain_placement(int x86_load, int arm_threshold,
                              int fpga_threshold,
                              bool hw_kernel_available) {
  bool wants_reconfigure = false;
  const Target target = decide_placement(
      x86_load, arm_threshold, fpga_threshold, hw_kernel_available,
      wants_reconfigure);
  std::string why;
  const std::string load = "load " + std::to_string(x86_load);
  const std::string thrs = " (ARM_THR " + std::to_string(arm_threshold) +
                           ", FPGA_THR " + std::to_string(fpga_threshold) +
                           ")";
  if (!hw_kernel_available && wants_reconfigure) {
    why = load + " exceeds FPGA_THR but the kernel is not resident" + thrs +
          "; running on " + to_string(target) +
          " while the XCLBIN loads in the background [lines " +
          (target == Target::kX86 ? "9-13" : "14-18") + "]";
  } else if (target == Target::kX86) {
    why = load + " within both thresholds" + thrs +
          "; staying on x86 [lines 19-21]";
  } else if (target == Target::kArm) {
    why = x86_load <= fpga_threshold
              ? load + " exceeds only ARM_THR" + thrs +
                    "; migrating to ARM [lines 22-24]"
              : load + " exceeds FPGA_THR with the kernel resident, but "
                    "ARM_THR < FPGA_THR implies ARM is the faster "
                    "target" +
                    thrs + " [lines 25-31]";
  } else {
    why = load + " exceeds FPGA_THR, kernel resident, FPGA_THR < ARM_THR" +
          thrs + "; migrating to the FPGA [lines 25-31]";
  }
  return why;
}

SchedulerServer::SchedulerServer(sim::Simulation& sim, LoadMonitor& monitor,
                                 fpga::FpgaDevice& device,
                                 ThresholdTable& table,
                                 std::vector<fpga::XclbinImage> xclbins,
                                 Options opts, Logger log)
    : sim_(sim),
      monitor_(monitor),
      device_(device),
      table_(table),
      xclbins_(std::move(xclbins)),
      opts_(opts),
      log_(std::move(log)) {
  // "Query Available HW Kernels" bookkeeping: index every kernel of
  // every registered image once, instead of scanning images x kernels
  // per lookup.  First image providing a kernel wins, matching the old
  // linear scan's front-to-back precedence.
  for (std::size_t i = 0; i < xclbins_.size(); ++i) {
    for (const auto& k : xclbins_[i].kernels) {
      kernel_index_.try_emplace(k.name, i);
    }
  }
  // A virtualized device gets a slot scheduler with every registered
  // kernel in its catalog: placement decisions then trade slots in a
  // capacity market instead of swapping whole images.
  if (device_.slot_mode()) {
    slots_ = std::make_unique<fpga::SlotScheduler>(device_, opts_.slot_policy);
    for (const auto& image : xclbins_) {
      for (const auto& k : image.kernels) slots_->register_kernel(k);
    }
  }
}

std::vector<std::vector<std::byte>> SchedulerServer::broadcast_table()
    const {
  std::vector<std::vector<std::byte>> frames(table_.size());
  std::size_t i = 0;
  for (const ThresholdEntry& entry : table_.entries()) {
    encode_table_sync_into(entry, frames[i++]);
  }
  return frames;
}

const fpga::XclbinImage* SchedulerServer::image_with(
    std::string_view kernel) const {
  const auto it = kernel_index_.find(kernel);
  return it == kernel_index_.end() ? nullptr : &xclbins_[it->second];
}

void SchedulerServer::maybe_start_reconfiguration(std::string_view kernel) {
  if (device_.reconfiguring()) return;  // one download at a time
  if (!fpga_healthy_) return;  // evicted target: don't feed it downloads
  if (!breaker_closed()) return;  // gray target: no new downloads either
  const fpga::XclbinImage* image = image_with(kernel);
  if (image == nullptr) {
    log_.warn("server: no XCLBIN provides kernel ", kernel);
    return;
  }
  ++stats_.reconfigurations_started;
  log_.info("server: reconfiguring FPGA with ", image->id, " for kernel ",
            kernel);
  const obs::SpanRef span = begin_reconfigure_span();
  device_.reconfigure(
      *image, [this, span, id = image->id](fpga::ReconfigureResult result) {
        end_reconfigure_span(span);
        if (succeeded(result)) {
          log_.debug("server: reconfiguration ", id, " complete");
        } else {
          log_.warn("server: reconfiguration ", id, " failed (",
                    fpga::to_string(result), ") -- kernels not resident");
        }
      });
}

obs::SpanRef SchedulerServer::begin_reconfigure_span() {
  if (tracer_ == nullptr || !tracer_->sampled(0)) return obs::SpanRef{};
  return tracer_->begin(trace_lane_, obs::kTrackFpga, "fpga.reconfigure",
                        /*trace_id=*/0, sim_.now());
}

void SchedulerServer::end_reconfigure_span(obs::SpanRef span) {
  if (tracer_ != nullptr) tracer_->end(span, sim_.now());
}

fpga::ResidencyView SchedulerServer::residency(
    std::string_view kernel) const {
  // An evicted target answers no residency probes: its kernels read as
  // absent, exactly as a physically absent card would.
  if (!fpga_healthy_) return fpga::ResidencyView{};
  return device_.residency(kernel);
}

bool SchedulerServer::ensure_resident(std::string_view kernel) {
  if (!fpga_healthy_ || !breaker_closed() || device_.reconfiguring()) {
    return false;
  }
  if (device_.residency(kernel).resident()) return false;
  if (slots_ != nullptr) return slots_->provision(kernel);
  const fpga::XclbinImage* image = image_with(kernel);
  if (image == nullptr) {
    log_.warn("server: no XCLBIN provides kernel ", kernel);
    return false;
  }
  log_.debug("server: warming ", image->id, " for kernel ", kernel);
  const obs::SpanRef span = begin_reconfigure_span();
  device_.reconfigure(
      *image, [this, span, id = image->id](fpga::ReconfigureResult result) {
        end_reconfigure_span(span);
        if (!succeeded(result)) {
          log_.warn("server: warm load of ", id, " failed (",
                    fpga::to_string(result), ")");
        }
      });
  return true;
}

void SchedulerServer::start_health_checks() {
  start_health_checks(HealthOptions());
}

void SchedulerServer::start_health_checks(HealthOptions opts) {
  XAR_EXPECTS(opts.period > Duration::zero());
  XAR_EXPECTS(opts.timeout > Duration::zero());
  XAR_EXPECTS(opts.miss_limit >= 1);
  health_opts_ = opts;
  if (health_on_) return;  // retune only; the running loop picks it up
  health_on_ = true;
  ++health_generation_;
  const std::uint64_t gen = health_generation_;
  sim_.schedule_in(health_opts_.period, [this, gen] {
    if (health_on_ && gen == health_generation_) heartbeat_tick();
  });
}

void SchedulerServer::stop_health_checks() {
  health_on_ = false;
  ++health_generation_;  // orphan any in-flight tick/timeout events
  fpga_healthy_ = true;
  consecutive_misses_ = 0;
  breaker_ = BreakerState::kClosed;
  breaker_gray_streak_ = 0;
}

void SchedulerServer::heartbeat_tick() {
  const std::uint64_t seq = ++heartbeat_seq_;
  const std::uint64_t gen = health_generation_;
  ++stats_.heartbeats_sent;
  // A live card answers one reply latency later; a dead card never
  // does (the ping vanishes into the dead PCIe slot).  A *slowed* cell
  // answers -- late: the modeled ping handler rides the degraded
  // service rate (set_reply_latency_scale), and a reply above the
  // slow-reply bar is the breaker's gray signal even when it beats the
  // timeout.
  if (!device_.offline()) {
    const Duration delay =
        Duration::ms(health_opts_.reply_latency.to_ms() *
                     reply_latency_scale_);
    const bool slow = delay > health_opts_.slow_reply;
    sim_.schedule_in(delay, [this, seq, gen, slow] {
      if (health_on_ && gen == health_generation_) {
        heartbeat_reply(seq, slow);
      }
    });
  }
  sim_.schedule_in(health_opts_.timeout, [this, seq, gen] {
    if (health_on_ && gen == health_generation_) heartbeat_timeout(seq);
  });
  sim_.schedule_in(health_opts_.period, [this, gen] {
    if (health_on_ && gen == health_generation_) heartbeat_tick();
  });
}

void SchedulerServer::breaker_note_gray() {
  if (breaker_ != BreakerState::kClosed) {
    // An open breaker absorbs further gray signals; a half-open probe
    // that comes back gray slams it shut again and restarts the
    // cooldown.
    breaker_ = BreakerState::kOpen;
    breaker_opened_at_ = sim_.now();
    return;
  }
  if (++breaker_gray_streak_ >= health_opts_.breaker_trip_limit) {
    breaker_ = BreakerState::kOpen;
    breaker_opened_at_ = sim_.now();
    ++stats_.breaker_trips;
    log_.warn("server: circuit breaker OPEN after ", breaker_gray_streak_,
              " gray signals -- FPGA target demoted");
  }
}

void SchedulerServer::breaker_note_ok() {
  breaker_gray_streak_ = 0;
  switch (breaker_) {
    case BreakerState::kClosed:
      return;
    case BreakerState::kOpen:
      // Probing starts only after the cooldown; the first clean reply
      // after it half-opens the breaker.
      if (sim_.now() - breaker_opened_at_ >= health_opts_.breaker_cooldown) {
        breaker_ = BreakerState::kHalfOpen;
      }
      return;
    case BreakerState::kHalfOpen:
      breaker_ = BreakerState::kClosed;
      ++stats_.breaker_closes;
      log_.info("server: circuit breaker closed -- FPGA target reinstated "
                "in placement scoring");
      return;
  }
}

void SchedulerServer::heartbeat_reply(std::uint64_t seq, bool slow) {
  if (seq <= expired_seq_) {
    // The reply lost the race: its timeout already fired and the miss
    // was counted.  Ignoring it keeps the state machine monotone -- a
    // stale packet cannot resurrect a target the tracker gave up on.
    // (The timeout already fed the breaker; no second gray signal.)
    ++stats_.late_replies;
    return;
  }
  if (seq <= replied_seq_) return;  // duplicate
  replied_seq_ = seq;
  consecutive_misses_ = 0;
  if (slow) {
    ++stats_.slow_replies;
    breaker_note_gray();
  } else {
    breaker_note_ok();
  }
  if (!fpga_healthy_) {
    fpga_healthy_ = true;
    ++stats_.reinstatements;
    log_.info("server: FPGA target reinstated (heartbeat ", seq, ")");
  }
}

void SchedulerServer::heartbeat_timeout(std::uint64_t seq) {
  if (seq <= replied_seq_) return;  // answered in time
  if (seq > expired_seq_) expired_seq_ = seq;
  ++stats_.heartbeats_missed;
  ++consecutive_misses_;
  breaker_note_gray();
  if (consecutive_misses_ >= health_opts_.miss_limit && fpga_healthy_) {
    fpga_healthy_ = false;
    ++stats_.evictions;
    log_.warn("server: FPGA target evicted after ", consecutive_misses_,
              " missed heartbeats");
  }
}

void SchedulerServer::request_placement(std::string_view app,
                                        std::uint32_t pid,
                                        DecisionCallback on_decision) {
  XAR_EXPECTS(on_decision != nullptr);
  // The client marshals its request over the socket; the server decodes
  // it after the round-trip delay.  Running the real codec on every
  // request keeps the wire format honest in every experiment.  The
  // callback parks in a pooled PendingRequest slot and the wire frame
  // packs into the open batch's arena, back to back with every other
  // request arriving at this same instant -- so a whole spike tick
  // shares ONE scheduled event, one vectorized decode sweep, one load
  // sample and one residency probe per app.  The event captures only
  // {this, batch} -- trivially copyable, inside the engine's inline
  // buffer, zero per-request allocations.
  const std::uint32_t slot = pending_.acquire();
  pending_[slot].on_decision = std::move(on_decision);
  pending_[slot].next = sim::SlotPool<int>::kNoSlot;

  if (open_batch_ == sim::SlotPool<int>::kNoSlot ||
      open_batch_at_ != sim_.now()) {
    // First request of this instant: open a batch with its own
    // round-trip deadline.  A still-open earlier batch keeps its
    // already-scheduled pass; it just stops accepting requests.
    open_batch_ = batches_.acquire();
    // Recycled slots keep old values; reset fields individually so the
    // arena's warm capacity survives.
    Batch& fresh = batches_[open_batch_];
    fresh.head = sim::SlotPool<int>::kNoSlot;
    fresh.tail = sim::SlotPool<int>::kNoSlot;
    fresh.count = 0;
    fresh.arena.clear();
    fresh.at = sim_.now();
    open_batch_at_ = sim_.now();
    const std::uint32_t batch_slot = open_batch_;
    sim_.schedule_in(opts_.request_overhead,
                     [this, batch_slot] { finish_batch(batch_slot); });
  }
  Batch& batch = batches_[open_batch_];
  encode_placement_request_append(app, /*kernel=*/{}, pid, batch.arena);
  if (batch.tail == sim::SlotPool<int>::kNoSlot) {
    batch.head = slot;
  } else {
    pending_[batch.tail].next = slot;
  }
  batch.tail = slot;
  ++batch.count;
}

void SchedulerServer::finish_batch(std::uint32_t batch_slot) {
  if (open_batch_ == batch_slot) open_batch_ = sim::SlotPool<int>::kNoSlot;
  // Swap (not copy) the arena out: the batch slot inherits the old
  // scratch buffer, so both capacities keep cycling without a single
  // allocation, and a decision callback that re-enters
  // request_placement writes into a *different* batch's arena while the
  // views below stay stable.
  Batch& finishing = batches_[batch_slot];
  arena_scratch_.swap(finishing.arena);
  const std::uint32_t head = finishing.head;
  const std::uint32_t count = finishing.count;
  const TimePoint opened_at = finishing.at;
  batches_.release(batch_slot);
  ++stats_.batches;
  if (count > stats_.max_batch) stats_.max_batch = count;
  if (tracer_ != nullptr && tracer_->sampled(0)) {
    // The pass itself runs at one instant; the span covers the socket
    // round trip the batch spent in flight.
    tracer_->emit(trace_lane_, obs::kTrackSched, "sched.batch",
                  /*trace_id=*/0, opened_at, sim_.now());
  }

  // ONE vectorized decode sweep over the packed arena replaces the
  // per-request decode_message_view calls: a single pass touches the
  // frames in memory order and skips the per-frame variant dispatch.
  // Every view aliases arena_scratch_.
  decode_placement_request_arena(arena_scratch_, count, views_scratch_);

  // ONE load-monitor sample serves the whole batch: every same-instant
  // request sees the same sampled load, exactly as the paper's
  // timer-driven x86LOAD figure would be read once per server tick.
  const int load = monitor_.x86_load();
  probe_cache_.clear();

  std::uint32_t slot = head;
  std::uint32_t index = 0;
  std::exception_ptr deferred;
  while (slot != sim::SlotPool<int>::kNoSlot) {
    // The callback inside finish_one may re-enter request_placement and
    // recycle slots, so read the link before processing.
    const std::uint32_t next = pending_[slot].next;
    try {
      finish_one(slot, load, views_scratch_[index]);
    } catch (...) {
      // One bad request must not swallow its batch-mates' decisions:
      // under the old per-request events they would each have fired
      // independently.  Answer the rest, then propagate the first
      // error (finish_one already released the failed slot).
      if (deferred == nullptr) deferred = std::current_exception();
    }
    slot = next;
    ++index;
  }
  if (deferred != nullptr) std::rethrow_exception(deferred);
}

void SchedulerServer::finish_one(std::uint32_t slot, int load,
                                 const PlacementRequestView& request) {
  ++stats_.requests;
  // Borrowed resolve: `request.app` aliases the batch arena, and
  // resolves against the table's interned AppId index without a single
  // string copy.
  const AppId app_id = table_.id_of(request.app);
  if (app_id == kInvalidAppId) {
    std::string app(request.app);  // the view dies with the batch pass
    pending_[slot].on_decision = nullptr;  // drop the callback's captures
    pending_.release(slot);
    throw Error("threshold table has no entry for `" + app + "`");
  }
  const ThresholdEntry& entry = table_.at(app_id);

  // Residency probes are shared across the batch: one lookup per
  // distinct app (linear scan -- spikes are many requests for few
  // apps).  A batch-mate's decision (or its callback) can mutate
  // residency synchronously -- starting a reconfiguration tears
  // fabric down, a callback may even take the card offline -- so each
  // cached ResidencyView is revalidated against the device: in slot
  // mode it stays good until *its* slot reprograms, otherwise until
  // the device's residency epoch moves.
  fpga::ResidencyView view;
  bool probed = false;
  std::size_t cached = probe_cache_.size();
  for (std::size_t i = 0; i < probe_cache_.size(); ++i) {
    if (probe_cache_[i].first != app_id) continue;
    cached = i;
    if (device_.residency_current(probe_cache_[i].second)) {
      view = probe_cache_[i].second;
      probed = true;
    }
    break;
  }
  if (!probed) {
    view = device_.residency(entry.kernel_name);
    ++stats_.residency_probes;
    if (cached == probe_cache_.size()) {
      probe_cache_.emplace_back(app_id, view);
    } else {
      probe_cache_[cached].second = view;
    }
  }
  // An evicted target answers no residency probes: the tracker treats
  // its kernels as absent, which drops Algorithm 2 into its CPU-only
  // branches exactly as a physically absent card would.
  const bool kernel_ready = fpga_healthy_ && view.resident();

  PlacementDecision decision;
  decision.observed_load = load;

  // Gray demotion: an open (or probing) breaker inflates the effective
  // FPGA threshold instead of evicting the target -- resident kernels
  // still serve genuinely heavy load, but marginal traffic stays on the
  // CPUs until the cell proves itself again.
  int fpga_thr = entry.fpga_threshold;
  if (!breaker_closed()) {
    fpga_thr = static_cast<int>(
                   fpga_thr * health_opts_.breaker_demotion_factor) +
               1;
  }

  bool wants_reconfigure = false;
  decision.target = decide_placement(load, entry.arm_threshold, fpga_thr,
                                     kernel_ready, wants_reconfigure);

  if (slots_ != nullptr) {
    // Virtualized device: every request is a demand signal, and the
    // slot scheduler -- not a whole-image download -- decides whether
    // the kernel deserves fabric (fresh slot, eviction) or more of it
    // (replication).  Replication is also consulted when the kernel is
    // already resident but the load is past FPGA_THR: sustained
    // pressure grows CUs.  A tripped breaker stops feeding the gray
    // cell new programmings without touching what is already resident.
    slots_->note_demand(entry.kernel_name);
    if (fpga_healthy_ && breaker_closed() &&
        (wants_reconfigure || (kernel_ready && load > fpga_thr))) {
      if (slots_->provision(entry.kernel_name)) {
        ++stats_.reconfigurations_started;
        decision.reconfiguration_started = true;
      }
    }
  } else if (wants_reconfigure && breaker_closed()) {
    const bool was_reconfiguring = device_.reconfiguring();
    maybe_start_reconfiguration(entry.kernel_name);
    decision.reconfiguration_started = !was_reconfiguring;
    if (!opts_.hide_reconfiguration && load > fpga_thr &&
        entry.fpga_threshold < entry.arm_threshold) {
      // Blocking ablation: the traditional flow stalls the caller on
      // the configuration instead of running elsewhere meanwhile.
      decision.target = Target::kFpga;
      decision.wait_for_fpga = true;
    }
  }

  switch (decision.target) {
    case Target::kX86:  ++stats_.to_x86; break;
    case Target::kArm:  ++stats_.to_arm; break;
    case Target::kFpga: ++stats_.to_fpga; break;
  }
  log_.trace("server: app=", request.app, " load=", load, " -> ",
             to_string(decision.target));
  if (tracer_ != nullptr && request.pid != 0 &&
      tracer_->sampled(request.pid)) {
    // Stitch the decision to the submitting job via the wire-carried
    // trace id (PlacementRequestMsg::pid).
    tracer_->instant(trace_lane_, obs::kTrackSched, "sched.decide",
                     request.pid, sim_.now());
    if (decision.reconfiguration_started) {
      tracer_->instant(trace_lane_, obs::kTrackSched, "sched.reconfigure",
                       request.pid, sim_.now());
    }
  }
  // The request view stays valid (it aliases the pass's arena scratch,
  // not the slot); the callback runs last so it may immediately issue
  // the next request.
  DecisionCallback cb = std::move(pending_[slot].on_decision);
  pending_.release(slot);
  answer(std::move(cb), decision);
}

void SchedulerServer::register_metrics(obs::Registry& registry,
                                       const std::string& prefix) const {
  registry.link_counter(prefix + ".requests", &stats_.requests);
  registry.link_counter(prefix + ".to_x86", &stats_.to_x86);
  registry.link_counter(prefix + ".to_arm", &stats_.to_arm);
  registry.link_counter(prefix + ".to_fpga", &stats_.to_fpga);
  registry.link_counter(prefix + ".reconfigurations_started",
                        &stats_.reconfigurations_started);
  registry.link_counter(prefix + ".batches", &stats_.batches);
  registry.link_gauge(prefix + ".max_batch", &stats_.max_batch);
  registry.link_counter(prefix + ".residency_probes",
                        &stats_.residency_probes);
  registry.link_counter(prefix + ".heartbeats_sent",
                        &stats_.heartbeats_sent);
  registry.link_counter(prefix + ".heartbeats_missed",
                        &stats_.heartbeats_missed);
  registry.link_counter(prefix + ".late_replies", &stats_.late_replies);
  registry.link_counter(prefix + ".evictions", &stats_.evictions);
  registry.link_counter(prefix + ".reinstatements",
                        &stats_.reinstatements);
  registry.link_counter(prefix + ".slow_replies", &stats_.slow_replies);
  registry.link_counter(prefix + ".breaker_trips", &stats_.breaker_trips);
  registry.link_counter(prefix + ".breaker_closes",
                        &stats_.breaker_closes);
  if (slots_ != nullptr) {
    slots_->register_metrics(registry, prefix + ".slots");
  }
}

void SchedulerServer::answer(DecisionCallback cb, PlacementDecision decision) {
  if (!opts_.reply_channel.connected()) {
    cb(decision);
    return;
  }
  // The client lives on another shard: the callback and the decision
  // move into the mailbox message itself.  The capture outgrows the
  // inline callable buffer (one allocation per remote reply), but the
  // message must own its payload -- a server-side pool would be
  // touched from the destination shard's thread at delivery time,
  // racing the server's next batch in parallel mode.
  opts_.reply_channel.deliver(
      [remote_cb = std::move(cb), decision]() mutable {
        remote_cb(decision);
      });
}

}  // namespace xartrek::runtime
