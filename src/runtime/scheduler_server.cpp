#include "runtime/scheduler_server.hpp"

#include <utility>

#include "common/assert.hpp"
#include "runtime/protocol.hpp"

namespace xartrek::runtime {

Target decide_placement(int x86_load, int arm_threshold, int fpga_threshold,
                        bool hw_kernel_available, bool& wants_reconfigure) {
  wants_reconfigure = false;
  const bool above_arm = x86_load > arm_threshold;

  // FPGA threshold respected: only the ARM threshold matters
  // (Algorithm 2 lines 19-24).
  if (x86_load <= fpga_threshold) {
    return above_arm ? Target::kArm : Target::kX86;
  }
  // Past FPGA_THR with no resident kernel: configure in the background
  // and keep running on a CPU meanwhile (lines 9-18).
  if (!hw_kernel_available) {
    wants_reconfigure = true;
    return above_arm ? Target::kArm : Target::kX86;
  }
  // Past FPGA_THR with the kernel resident; the smaller threshold
  // implies the smaller execution time on that target (lines 25-31).
  return fpga_threshold < arm_threshold ? Target::kFpga : Target::kArm;
}

std::string explain_placement(int x86_load, int arm_threshold,
                              int fpga_threshold,
                              bool hw_kernel_available) {
  bool wants_reconfigure = false;
  const Target target = decide_placement(
      x86_load, arm_threshold, fpga_threshold, hw_kernel_available,
      wants_reconfigure);
  std::string why;
  const std::string load = "load " + std::to_string(x86_load);
  const std::string thrs = " (ARM_THR " + std::to_string(arm_threshold) +
                           ", FPGA_THR " + std::to_string(fpga_threshold) +
                           ")";
  if (!hw_kernel_available && wants_reconfigure) {
    why = load + " exceeds FPGA_THR but the kernel is not resident" + thrs +
          "; running on " + to_string(target) +
          " while the XCLBIN loads in the background [lines " +
          (target == Target::kX86 ? "9-13" : "14-18") + "]";
  } else if (target == Target::kX86) {
    why = load + " within both thresholds" + thrs +
          "; staying on x86 [lines 19-21]";
  } else if (target == Target::kArm) {
    why = x86_load <= fpga_threshold
              ? load + " exceeds only ARM_THR" + thrs +
                    "; migrating to ARM [lines 22-24]"
              : load + " exceeds FPGA_THR with the kernel resident, but "
                    "ARM_THR < FPGA_THR implies ARM is the faster "
                    "target" +
                    thrs + " [lines 25-31]";
  } else {
    why = load + " exceeds FPGA_THR, kernel resident, FPGA_THR < ARM_THR" +
          thrs + "; migrating to the FPGA [lines 25-31]";
  }
  return why;
}

SchedulerServer::SchedulerServer(sim::Simulation& sim, LoadMonitor& monitor,
                                 fpga::FpgaDevice& device,
                                 ThresholdTable& table,
                                 std::vector<fpga::XclbinImage> xclbins,
                                 Options opts, Logger log)
    : sim_(sim),
      monitor_(monitor),
      device_(device),
      table_(table),
      xclbins_(std::move(xclbins)),
      opts_(opts),
      log_(std::move(log)) {
  // "Query Available HW Kernels" bookkeeping: index every kernel of
  // every registered image once, instead of scanning images x kernels
  // per lookup.  First image providing a kernel wins, matching the old
  // linear scan's front-to-back precedence.
  for (std::size_t i = 0; i < xclbins_.size(); ++i) {
    for (const auto& k : xclbins_[i].kernels) {
      kernel_index_.try_emplace(k.name, i);
    }
  }
}

std::vector<std::vector<std::byte>> SchedulerServer::broadcast_table()
    const {
  std::vector<std::vector<std::byte>> frames(table_.size());
  std::size_t i = 0;
  for (const ThresholdEntry& entry : table_.entries()) {
    encode_table_sync_into(entry, frames[i++]);
  }
  return frames;
}

const fpga::XclbinImage* SchedulerServer::image_with(
    std::string_view kernel) const {
  const auto it = kernel_index_.find(kernel);
  return it == kernel_index_.end() ? nullptr : &xclbins_[it->second];
}

void SchedulerServer::maybe_start_reconfiguration(std::string_view kernel) {
  if (device_.reconfiguring()) return;  // one download at a time
  const fpga::XclbinImage* image = image_with(kernel);
  if (image == nullptr) {
    log_.warn("server: no XCLBIN provides kernel ", kernel);
    return;
  }
  ++stats_.reconfigurations_started;
  log_.info("server: reconfiguring FPGA with ", image->id, " for kernel ",
            kernel);
  device_.reconfigure(*image, [this, id = image->id] {
    log_.debug("server: reconfiguration ", id, " complete");
  });
}

void SchedulerServer::request_placement(std::string_view app,
                                        DecisionCallback on_decision) {
  XAR_EXPECTS(on_decision != nullptr);
  // The client marshals its request over the socket; the server decodes
  // it after the round-trip delay.  Running the real codec on every
  // request keeps the wire format honest in every experiment.  The wire
  // bytes and the callback park in a pooled PendingRequest slot so the
  // scheduled event captures only {this, slot} -- trivially copyable,
  // inside the engine's inline buffer, zero per-request allocations.
  const std::uint32_t slot = pending_.acquire();
  encode_placement_request_into(app, /*kernel=*/{}, /*pid=*/0,
                                pending_[slot].wire);
  pending_[slot].on_decision = std::move(on_decision);
  sim_.schedule_in(opts_.request_overhead,
                   [this, slot] { finish_request(slot); });
}

void SchedulerServer::finish_request(std::uint32_t slot) {
  ++stats_.requests;
  // Borrowed decode: `request.app` aliases the slot's wire buffer, and
  // resolves against the table's interned AppId index without a single
  // string copy.
  const auto request =
      std::get<PlacementRequestView>(decode_message_view(pending_[slot].wire));
  const AppId app_id = table_.id_of(request.app);
  if (app_id == kInvalidAppId) {
    std::string app(request.app);  // the view dies with the slot
    pending_[slot].on_decision = nullptr;  // drop the callback's captures
    pending_.release(slot);
    throw Error("threshold table has no entry for `" + app + "`");
  }
  const ThresholdEntry& entry = table_.at(app_id);
  const int load = monitor_.x86_load();
  const bool kernel_ready = device_.has_kernel(entry.kernel_name);

  PlacementDecision decision;
  decision.observed_load = load;

  bool wants_reconfigure = false;
  decision.target =
      decide_placement(load, entry.arm_threshold, entry.fpga_threshold,
                       kernel_ready, wants_reconfigure);

  if (wants_reconfigure) {
    const bool was_reconfiguring = device_.reconfiguring();
    maybe_start_reconfiguration(entry.kernel_name);
    decision.reconfiguration_started = !was_reconfiguring;
    if (!opts_.hide_reconfiguration && load > entry.fpga_threshold &&
        entry.fpga_threshold < entry.arm_threshold) {
      // Blocking ablation: the traditional flow stalls the caller on
      // the configuration instead of running elsewhere meanwhile.
      decision.target = Target::kFpga;
      decision.wait_for_fpga = true;
    }
  }

  switch (decision.target) {
    case Target::kX86:  ++stats_.to_x86; break;
    case Target::kArm:  ++stats_.to_arm; break;
    case Target::kFpga: ++stats_.to_fpga; break;
  }
  log_.trace("server: app=", request.app, " load=", load, " -> ",
             to_string(decision.target));
  // Every borrowed view above is dead before the slot recycles; the
  // callback runs last so it may immediately issue the next request.
  DecisionCallback cb = std::move(pending_[slot].on_decision);
  pending_.release(slot);  // the wire buffer stays warm for reuse
  cb(decision);
}

}  // namespace xartrek::runtime
