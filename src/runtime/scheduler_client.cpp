#include "runtime/scheduler_client.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace xartrek::runtime {

SchedulerClient::SchedulerClient(ThresholdTable& table, Options opts,
                                 Logger log)
    : table_(table), opts_(opts), log_(std::move(log)) {
  XAR_EXPECTS(opts_.increase_step >= 1);
}

AppId SchedulerClient::resolve(const std::string& app) {
  // One client instance serves one application in the paper's design,
  // so a single-entry memo turns the per-return map lookup into a
  // string compare plus a vector index.
  if (cached_id_ == kInvalidAppId || app != cached_app_) {
    const AppId id = table_.id_of(app);
    if (id == kInvalidAppId) {
      throw Error("threshold table has no entry for `" + app + "`");
    }
    cached_app_ = app;
    cached_id_ = id;
  }
  return cached_id_;
}

ThresholdUpdate SchedulerClient::on_function_return(
    const RunObservation& obs) {
  ThresholdEntry& entry = table_.at_mutable(resolve(obs.app));

  if (!opts_.refinement_enabled) {
    return ThresholdUpdate::kDisabled;
  }

  auto raise = [&](int& thr) {
    thr = std::min(thr + opts_.increase_step, opts_.threshold_cap);
  };

  switch (obs.executed_on) {
    case Target::kX86: {
      // Lines 4-5: x86 already loses to the FPGA at a load below the
      // FPGA threshold -- the threshold was too permissive; tighten it.
      if (obs.exec_time > entry.fpga_exec &&
          obs.x86_load < entry.fpga_threshold) {
        entry.fpga_threshold = obs.x86_load;
        log_.debug("client[", obs.app, "]: FPGA_THR -> ", obs.x86_load);
        return ThresholdUpdate::kLoweredFpgaThreshold;
      }
      // Lines 7-8: same reasoning for ARM.
      if (obs.exec_time > entry.arm_exec &&
          obs.x86_load < entry.arm_threshold) {
        entry.arm_threshold = obs.x86_load;
        log_.debug("client[", obs.app, "]: ARM_THR -> ", obs.x86_load);
        return ThresholdUpdate::kLoweredArmThreshold;
      }
      // Line 10: refresh the stored x86 reference time.
      entry.x86_exec = obs.exec_time;
      return ThresholdUpdate::kRecordedX86Exec;
    }
    case Target::kArm: {
      // Lines 14-17.  Record the fresh ARM time (line 1), then loosen
      // the threshold if the migration did not pay off.
      const Duration measured = obs.exec_time;
      entry.arm_exec = measured;
      if (measured > entry.x86_exec) {
        raise(entry.arm_threshold);
        log_.debug("client[", obs.app, "]: ARM_THR raised to ",
                   entry.arm_threshold);
        return ThresholdUpdate::kRaisedArmThreshold;
      }
      return ThresholdUpdate::kRecordedOnly;
    }
    case Target::kFpga: {
      // Lines 19-23.
      const Duration measured = obs.exec_time;
      entry.fpga_exec = measured;
      if (measured > entry.x86_exec) {
        raise(entry.fpga_threshold);
        log_.debug("client[", obs.app, "]: FPGA_THR raised to ",
                   entry.fpga_threshold);
        return ThresholdUpdate::kRaisedFpgaThreshold;
      }
      return ThresholdUpdate::kRecordedOnly;
    }
  }
  XAR_ASSERT(false);
}

}  // namespace xartrek::runtime
