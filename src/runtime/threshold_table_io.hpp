// Threshold-table text format.
//
// Step G "outputs a table that describes, for each application, 1) the
// application name, 2) the hardware kernel of the application's
// function, 3) the FPGA threshold, and 4) the ARM threshold" (§3.1).
// This module defines that artifact: a line-oriented text file that the
// run-time loads at startup and that operators can inspect and edit.
// The scenario reference times ride along because Algorithm 1 needs
// them.
//
//   # xar-trek threshold table
//   app cg_a kernel KNL_HW_CG_A fpga_thr 29 arm_thr 23 \
//       x86_ms 2182.0 arm_ms 8406.0 fpga_ms 10597.8
#pragma once

#include <iosfwd>
#include <string>

#include "runtime/threshold_table.hpp"

namespace xartrek::runtime {

/// Render the table in the step-G text format (round-trips via parse).
[[nodiscard]] std::string serialize_threshold_table(
    const ThresholdTable& table);

/// Parse the text format; throws xartrek::Error with a line number on
/// malformed input (unknown keys, missing fields, duplicate apps).
[[nodiscard]] ThresholdTable parse_threshold_table(std::istream& is);
[[nodiscard]] ThresholdTable parse_threshold_table_string(
    const std::string& text);

}  // namespace xartrek::runtime
