#include "runtime/protocol.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/binary_io.hpp"

namespace xartrek::runtime {

namespace {

using Writer = BinaryWriter;
using Reader = BinaryReader;

[[nodiscard]] Target target_from_wire(std::uint8_t v) {
  switch (v) {
    case 0: return Target::kX86;
    case 1: return Target::kArm;
    case 2: return Target::kFpga;
    default: throw Error("protocol: invalid target id");
  }
}

void encode_payload(const PlacementRequestMsg& m, Writer& w) {
  w.str(m.app);
  w.str(m.kernel);
  w.u32(m.pid);
}
void encode_payload(const PlacementReplyMsg& m, Writer& w) {
  w.u8(static_cast<std::uint8_t>(m.target));
  w.u8(m.wait_for_fpga ? 1 : 0);
  w.i32(m.observed_load);
}
void encode_payload(const ThresholdReportMsg& m, Writer& w) {
  w.str(m.app);
  w.u8(static_cast<std::uint8_t>(m.executed_on));
  w.f64(m.exec_time_ms);
  w.i32(m.x86_load);
}
void encode_payload_entry(const ThresholdEntry& e, Writer& w) {
  w.str(e.app);
  w.str(e.kernel_name);
  w.i32(e.fpga_threshold);
  w.i32(e.arm_threshold);
  w.f64(e.x86_exec.to_ms());
  w.f64(e.arm_exec.to_ms());
  w.f64(e.fpga_exec.to_ms());
}
void encode_payload(const TableSyncMsg& m, Writer& w) {
  encode_payload_entry(m.entry, w);
}

[[nodiscard]] MessageType type_of(const Message& m) {
  if (std::holds_alternative<PlacementRequestMsg>(m)) {
    return MessageType::kPlacementRequest;
  }
  if (std::holds_alternative<PlacementReplyMsg>(m)) {
    return MessageType::kPlacementReply;
  }
  if (std::holds_alternative<ThresholdReportMsg>(m)) {
    return MessageType::kThresholdReport;
  }
  return MessageType::kTableSync;
}

/// Write the header with a zero length field, returning the offset of
/// the length so the caller can patch it after the payload lands.
[[nodiscard]] std::size_t begin_frame(Writer& w, MessageType type) {
  w.u16(kProtocolMagic);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(type));
  const std::size_t length_at = w.size();
  w.u32(0);  // patched by end_frame
  return length_at;
}

void end_frame(Writer& w, std::size_t length_at) {
  // The payload starts right after the 4-byte length field, so this is
  // position-independent: it frames correctly whether the buffer was
  // cleared first or the frame was appended to a packed arena.
  w.patch_u32(length_at, static_cast<std::uint32_t>(
                             w.size() - length_at - sizeof(std::uint32_t)));
  XAR_ENSURES(w.size() >= kHeaderBytes);
}

}  // namespace

void encode_message_into(const Message& message, std::vector<std::byte>& out) {
  out.clear();
  Writer w(out);
  const std::size_t length_at = begin_frame(w, type_of(message));
  std::visit([&w](const auto& m) { encode_payload(m, w); }, message);
  end_frame(w, length_at);
}

void encode_placement_request_append(std::string_view app,
                                     std::string_view kernel,
                                     std::uint32_t pid,
                                     std::vector<std::byte>& out) {
  Writer w(out);
  const std::size_t length_at =
      begin_frame(w, MessageType::kPlacementRequest);
  w.str(app);
  w.str(kernel);
  w.u32(pid);
  end_frame(w, length_at);
}

void encode_table_sync_into(const ThresholdEntry& entry,
                            std::vector<std::byte>& out) {
  out.clear();
  Writer w(out);
  const std::size_t length_at = begin_frame(w, MessageType::kTableSync);
  encode_payload_entry(entry, w);
  end_frame(w, length_at);
}

std::vector<std::byte> encode_message(const Message& message) {
  std::vector<std::byte> out;
  encode_message_into(message, out);
  return out;
}

namespace {
struct Header {
  MessageType type;
  std::uint32_t payload_len;
};

[[nodiscard]] Header parse_header(std::span<const std::byte> buffer) {
  if (buffer.size() < kHeaderBytes) {
    throw Error("protocol: buffer shorter than header");
  }
  Reader r(buffer.first(kHeaderBytes));
  if (r.u16() != kProtocolMagic) throw Error("protocol: bad magic");
  if (r.u8() != kProtocolVersion) {
    throw Error("protocol: unsupported version");
  }
  const std::uint8_t type = r.u8();
  if (type < 1 || type > 4) throw Error("protocol: unknown message type");
  return Header{static_cast<MessageType>(type), r.u32()};
}
}  // namespace

MessageType peek_message_type(std::span<const std::byte> buffer) {
  return parse_header(buffer).type;
}

MessageView decode_message_view(std::span<const std::byte> buffer) {
  const Header header = parse_header(buffer);
  if (buffer.size() != kHeaderBytes + header.payload_len) {
    throw Error("protocol: payload length mismatch");
  }
  Reader r(buffer.subspan(kHeaderBytes));

  MessageView out;
  switch (header.type) {
    case MessageType::kPlacementRequest: {
      PlacementRequestView m;
      m.app = r.str_view();
      m.kernel = r.str_view();
      m.pid = r.u32();
      out = m;
      break;
    }
    case MessageType::kPlacementReply: {
      PlacementReplyMsg m;
      m.target = target_from_wire(r.u8());
      m.wait_for_fpga = r.u8() != 0;
      m.observed_load = r.i32();
      out = m;
      break;
    }
    case MessageType::kThresholdReport: {
      ThresholdReportView m;
      m.app = r.str_view();
      m.executed_on = target_from_wire(r.u8());
      m.exec_time_ms = r.f64();
      m.x86_load = r.i32();
      out = m;
      break;
    }
    case MessageType::kTableSync: {
      TableSyncView m;
      m.app = r.str_view();
      m.kernel_name = r.str_view();
      m.fpga_threshold = r.i32();
      m.arm_threshold = r.i32();
      m.x86_exec_ms = r.f64();
      m.arm_exec_ms = r.f64();
      m.fpga_exec_ms = r.f64();
      out = m;
      break;
    }
  }
  if (r.remaining() != 0) {
    throw Error("protocol: trailing bytes after payload");
  }
  return out;
}

Message to_owning(const MessageView& view) {
  if (const auto* req = std::get_if<PlacementRequestView>(&view)) {
    PlacementRequestMsg m;
    m.app = std::string(req->app);
    m.kernel = std::string(req->kernel);
    m.pid = req->pid;
    return m;
  }
  if (const auto* reply = std::get_if<PlacementReplyMsg>(&view)) {
    return *reply;
  }
  if (const auto* report = std::get_if<ThresholdReportView>(&view)) {
    ThresholdReportMsg m;
    m.app = std::string(report->app);
    m.executed_on = report->executed_on;
    m.exec_time_ms = report->exec_time_ms;
    m.x86_load = report->x86_load;
    return m;
  }
  const auto& sync = std::get<TableSyncView>(view);
  TableSyncMsg m;
  m.entry.app = std::string(sync.app);
  m.entry.kernel_name = std::string(sync.kernel_name);
  m.entry.fpga_threshold = sync.fpga_threshold;
  m.entry.arm_threshold = sync.arm_threshold;
  m.entry.x86_exec = Duration::ms(sync.x86_exec_ms);
  m.entry.arm_exec = Duration::ms(sync.arm_exec_ms);
  m.entry.fpga_exec = Duration::ms(sync.fpga_exec_ms);
  return m;
}

Message decode_message(std::span<const std::byte> buffer) {
  // One decoder: the owning form materializes the borrowed one.
  return to_owning(decode_message_view(buffer));
}

void decode_placement_request_arena(std::span<const std::byte> arena,
                                    std::size_t count,
                                    std::vector<PlacementRequestView>& out) {
  out.clear();
  std::size_t off = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (arena.size() - off < kHeaderBytes) {
      throw Error("protocol: arena shorter than frame header");
    }
    Reader h(arena.subspan(off, kHeaderBytes));
    if (h.u16() != kProtocolMagic) throw Error("protocol: bad magic");
    if (h.u8() != kProtocolVersion) {
      throw Error("protocol: unsupported version");
    }
    if (h.u8() !=
        static_cast<std::uint8_t>(MessageType::kPlacementRequest)) {
      throw Error("protocol: arena frame is not a PlacementRequest");
    }
    const std::uint32_t payload_len = h.u32();
    if (arena.size() - off - kHeaderBytes < payload_len) {
      throw Error("protocol: payload length mismatch");
    }
    Reader r(arena.subspan(off + kHeaderBytes, payload_len));
    PlacementRequestView m;
    m.app = r.str_view();
    m.kernel = r.str_view();
    m.pid = r.u32();
    if (r.remaining() != 0) {
      throw Error("protocol: trailing bytes after payload");
    }
    out.push_back(m);
    off += kHeaderBytes + payload_len;
  }
  if (off != arena.size()) {
    throw Error("protocol: trailing bytes after arena");
  }
}

}  // namespace xartrek::runtime
