#include "runtime/migration_executor.hpp"

#include <utility>

#include "common/assert.hpp"

namespace xartrek::runtime {

MigrationExecutor::MigrationExecutor(platform::Testbed& testbed, Logger log)
    : testbed_(testbed), log_(std::move(log)) {}

void MigrationExecutor::execute(Target target, const FunctionCosts& costs,
                                DoneCallback on_done, bool wait_for_fpga) {
  XAR_EXPECTS(on_done != nullptr);
  switch (target) {
    case Target::kX86:  execute_x86(costs, std::move(on_done)); return;
    case Target::kArm:  execute_arm(costs, std::move(on_done)); return;
    case Target::kFpga:
      execute_fpga(costs, std::move(on_done), wait_for_fpga);
      return;
  }
  XAR_ASSERT(false);
}

void MigrationExecutor::execute_x86(const FunctionCosts& costs,
                                    DoneCallback on_done) {
  const TimePoint start = testbed_.simulation().now();
  testbed_.x86().run(costs.x86_ms,
                     [this, start, cb = std::move(on_done)]() mutable {
                       cb(testbed_.simulation().now() - start);
                     });
}

void MigrationExecutor::execute_arm(const FunctionCosts& costs,
                                    DoneCallback on_done) {
  // Outbound: the state transform runs on the (contended) x86 host
  // *concurrently* with the working-set burst on the wire -- the bulk of
  // the payload is DSM pages that need no rewriting, so transformation
  // hides behind the transfer and the leg costs max(transform, wire)
  // instead of their sum.  The return trip mirrors it on the ARM side.
  struct Flight {
    MigrationExecutor* self;
    FunctionCosts costs;
    TimePoint start;
    DoneCallback cb;
    int legs = 2;
  };
  auto flight = std::make_shared<Flight>(Flight{
      this, costs, testbed_.simulation().now(), std::move(on_done)});
  auto outbound = [flight] {
    if (--flight->legs != 0) return;
    MigrationExecutor& self = *flight->self;
    // Remote execution on the ARM cluster, then the overlapped return.
    self.testbed_.arm().run(flight->costs.arm_ms, [flight] {
      MigrationExecutor& ex = *flight->self;
      flight->legs = 2;
      auto inbound = [flight] {
        if (--flight->legs != 0) return;
        flight->cb(flight->self->testbed_.simulation().now() -
                   flight->start);
      };
      ex.testbed_.arm().run(flight->costs.transform_ms, inbound);
      ex.testbed_.ethernet().transfer(flight->costs.return_bytes,
                                      std::move(inbound));
    });
  };
  testbed_.x86().run(costs.transform_ms, outbound);
  testbed_.ethernet().transfer(costs.migrate_bytes, std::move(outbound));
}

void MigrationExecutor::execute_fpga(const FunctionCosts& costs,
                                     DoneCallback on_done,
                                     bool wait_for_fpga) {
  const TimePoint start = testbed_.simulation().now();
  auto& sim = testbed_.simulation();
  auto& device = testbed_.fpga();

  if (!device.has_kernel(costs.kernel_name)) {
    if (wait_for_fpga) {
      // Poll until the kernel appears (lazy-configuration stall).
      sim.schedule_in(
          Duration::ms(10.0),
          [this, costs, cb = std::move(on_done), start]() mutable {
            execute_fpga(costs,
                         [this, cb = std::move(cb), start](Duration) mutable {
                           cb(testbed_.simulation().now() - start);
                         },
                         true);
          });
      return;
    }
    // Kernel vanished between decision and call: benign race; run the
    // software version locally instead.
    ++fallbacks_;
    log_.debug("executor: kernel ", costs.kernel_name,
               " not resident; falling back to x86");
    execute_x86(costs, std::move(on_done));
    return;
  }

  // XRT call overhead (runs on the host but is not core-bound: driver
  // submission + interrupt path), then DMA in, kernel, DMA out.
  sim.schedule_in(costs.xrt_call_overhead, [this, &sim, &device, costs,
                                            start,
                                            cb = std::move(on_done)]() mutable {
    testbed_.pcie().transfer(costs.fpga_input_bytes, [this, &sim, &device,
                                                      costs, start,
                                                      cb = std::move(
                                                          cb)]() mutable {
      if (!device.has_kernel(costs.kernel_name)) {
        // Evicted mid-flight (reconfiguration won the race).
        ++fallbacks_;
        execute_x86(costs,
                    [cb = std::move(cb), start, this](Duration) mutable {
                      cb(testbed_.simulation().now() - start);
                    });
        return;
      }
      device.execute(costs.kernel_name, costs.fpga_items, [this, &sim, costs,
                                                           start,
                                                           cb = std::move(
                                                               cb)]() mutable {
        testbed_.pcie().transfer(costs.fpga_output_bytes,
                                 [&sim, start, cb = std::move(cb)]() mutable {
                                   cb(sim.now() - start);
                                 });
      });
    });
  });
}

}  // namespace xartrek::runtime
