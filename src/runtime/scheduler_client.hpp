// The scheduler client -- dynamic threshold update (paper Algorithm 1).
//
// An instance is linked into every application binary; it runs after the
// selected function returns, compares the observed execution time and
// x86 CPU load against the threshold table, and refines the thresholds:
//
//   * executed on x86, slower than the stored FPGA time while the load
//     was *below* FPGA_THR  -> lower FPGA_THR to this load;
//   * else, slower than the stored ARM time below ARM_THR -> lower
//     ARM_THR;
//   * else -> just record the fresh x86 time;
//   * executed on ARM and slower than the stored x86 time -> raise
//     ARM_THR (the migration was not worth it);
//   * executed on FPGA and slower than the stored x86 time -> raise
//     FPGA_THR.
//
// The paper does not specify the "increase" step; we raise by one
// process (the load metric's granularity), configurable for ablation.
#pragma once

#include <string>

#include "common/log.hpp"
#include "common/time.hpp"
#include "runtime/target.hpp"
#include "runtime/threshold_table.hpp"

namespace xartrek::runtime {

/// What Algorithm 1 did with one observation (tests/diagnostics).
enum class ThresholdUpdate {
  kLoweredFpgaThreshold,
  kLoweredArmThreshold,
  kRecordedX86Exec,
  kRaisedArmThreshold,
  kRaisedFpgaThreshold,
  kRecordedOnly,
  kDisabled,
};

[[nodiscard]] constexpr const char* to_string(ThresholdUpdate u) {
  switch (u) {
    case ThresholdUpdate::kLoweredFpgaThreshold: return "FPGA_THR lowered";
    case ThresholdUpdate::kLoweredArmThreshold:  return "ARM_THR lowered";
    case ThresholdUpdate::kRecordedX86Exec:      return "x86exec recorded";
    case ThresholdUpdate::kRaisedArmThreshold:   return "ARM_THR raised";
    case ThresholdUpdate::kRaisedFpgaThreshold:  return "FPGA_THR raised";
    case ThresholdUpdate::kRecordedOnly:         return "recorded only";
    case ThresholdUpdate::kDisabled:             return "refinement off";
  }
  return "?";
}

/// One completed run, as the client sees it.
struct RunObservation {
  std::string app;
  Target executed_on = Target::kX86;
  Duration exec_time = Duration::zero();
  int x86_load = 0;  ///< load recorded alongside (Algorithm 1 line 2)
};

/// The client.
class SchedulerClient {
 public:
  struct Options {
    int increase_step = 1;      ///< processes added per "increase"
    int threshold_cap = 4096;   ///< sanity cap on raised thresholds
    bool refinement_enabled = true;  ///< ablation switch
  };

  explicit SchedulerClient(ThresholdTable& table)
      : SchedulerClient(table, Options(), Logger{}) {}
  SchedulerClient(ThresholdTable& table, Options opts, Logger log = {});

  /// Algorithm 1.  Requires the table to have a row for the app.
  ThresholdUpdate on_function_return(const RunObservation& obs);

 private:
  /// Intern `app` against the table (memoized; throws if unknown).
  [[nodiscard]] AppId resolve(const std::string& app);

  ThresholdTable& table_;
  Options opts_;
  Logger log_;
  std::string cached_app_;
  AppId cached_id_ = kInvalidAppId;
};

}  // namespace xartrek::runtime
