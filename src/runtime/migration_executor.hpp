// Migration executor -- runs the selected function where the scheduler
// decided.
//
//  x86:  the function's software demand enters the x86 run queue.
//  ARM:  Popcorn software migration -- state transformation on the
//        source CPU overlapped with the program state + working set
//        burst on the shared Ethernet (each direction costs
//        max(transform, transfer)), ARM execution, then the return
//        trip (paper §3.2; the costs the threshold estimator measures
//        "in locus").
//  FPGA: XRT hardware migration -- fixed OpenCL call overhead, input
//        DMA over shared PCIe, the kernel's compute unit, output DMA.
//        No state transformation: hardware kernels take self-contained
//        in-memory data (paper footnote 4).
#pragma once

#include <cstdint>
#include <string>

#include "common/log.hpp"
#include "common/time.hpp"
#include "platform/testbed.hpp"
#include "runtime/target.hpp"
#include "sim/callback.hpp"

namespace xartrek::runtime {

/// Everything the executor needs to cost one invocation of one selected
/// function.  Produced by the application model (apps::BenchmarkSpec).
struct FunctionCosts {
  // Software path.
  Duration x86_ms = Duration::zero();  ///< demand on the x86 cluster
  Duration arm_ms = Duration::zero();  ///< demand on the ARM cluster
  // ARM migration path.
  std::uint64_t migrate_bytes = 0;     ///< x86 -> ARM state + working set
  std::uint64_t return_bytes = 0;      ///< ARM -> x86 results + state
  Duration transform_ms = Duration::zero();  ///< per-direction transform
  // FPGA path.
  std::string kernel_name;
  std::uint64_t fpga_items = 1;
  std::uint64_t fpga_input_bytes = 0;
  std::uint64_t fpga_output_bytes = 0;
  Duration xrt_call_overhead = Duration::ms(1.0);  ///< OpenCL enqueue etc.
};

/// Executes function invocations on the testbed.
class MigrationExecutor {
 public:
  /// Callback receives the invocation's elapsed (wall) simulated time.
  using DoneCallback = sim::UniqueFunction<void(Duration elapsed)>;

  explicit MigrationExecutor(platform::Testbed& testbed, Logger log = {});

  /// Run one invocation on `target`.
  ///
  /// `wait_for_fpga`: block until the kernel is resident before
  /// offloading (the traditional lazy-configuration flow; used by the
  /// always-FPGA baseline and the blocking ablation).  Without it, an
  /// FPGA decision whose kernel vanished (evicted by a competing
  /// reconfiguration) falls back to x86 -- mirroring the real system,
  /// where the flag check and the kernel call race benignly.
  void execute(Target target, const FunctionCosts& costs,
               DoneCallback on_done, bool wait_for_fpga = false);

  /// Executions that wanted the FPGA but fell back to x86 (diagnostics).
  [[nodiscard]] std::uint64_t fpga_fallbacks() const { return fallbacks_; }

 private:
  void execute_x86(const FunctionCosts& costs, DoneCallback on_done);
  void execute_arm(const FunctionCosts& costs, DoneCallback on_done);
  void execute_fpga(const FunctionCosts& costs, DoneCallback on_done,
                    bool wait_for_fpga);

  platform::Testbed& testbed_;
  Logger log_;
  std::uint64_t fallbacks_ = 0;
};

}  // namespace xartrek::runtime
