// The scheduler server -- placement policy (paper Algorithm 2).
//
// Runs on the x86 host.  On initialization it queries the hardware
// kernels in the loaded XCLBIN, establishes the client socket, and
// starts the x86-load timer.  Each application request is answered with
// a placement decision derived from the threshold table, the sampled
// x86 load, and kernel residency; when the needed kernel is absent and
// the load is past FPGA_THR, the server starts a background
// reconfiguration while the function continues on a CPU -- hiding the
// transfer and programming latency (paper §3.4).
//
// Steady-state request path (submit -> encode -> decode -> decide ->
// callback) is allocation-free and O(log n): the wire frame and the
// decision callback live in a pooled PendingRequest slot, the scheduled
// event captures only {server, slot} (trivially copyable, stays inside
// the engine's inline buffer), the decode borrows string_views straight
// from the frame, and the app name is interned to a dense AppId against
// the threshold table without materializing a std::string.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/log.hpp"
#include "common/time.hpp"
#include "fpga/device.hpp"
#include "runtime/load_monitor.hpp"
#include "runtime/target.hpp"
#include "runtime/threshold_table.hpp"
#include "sim/callback.hpp"
#include "sim/simulation.hpp"
#include "sim/slot_pool.hpp"

namespace xartrek::runtime {

/// The server's answer to one placement request.
struct PlacementDecision {
  Target target = Target::kX86;
  /// True when this request triggered a background reconfiguration.
  bool reconfiguration_started = false;
  /// True when the executor must wait for the FPGA to become ready
  /// before offloading (only under the blocking-configuration ablation).
  bool wait_for_fpga = false;
  int observed_load = 0;
};

/// Pure policy core of Algorithm 2 (lines 9-31), exposed for exhaustive
/// property testing.  `wants_reconfigure` is set when the policy asks
/// for the FPGA to be (re)configured in the background.
[[nodiscard]] Target decide_placement(int x86_load, int arm_threshold,
                                      int fpga_threshold,
                                      bool hw_kernel_available,
                                      bool& wants_reconfigure);

/// Operator-facing explanation of what Algorithm 2 would decide and
/// which pseudocode branch fires -- for dashboards and postmortems
/// ("why did digit2000 run on x86 at 14:03?").
[[nodiscard]] std::string explain_placement(int x86_load, int arm_threshold,
                                            int fpga_threshold,
                                            bool hw_kernel_available);

/// The server.
class SchedulerServer {
 public:
  using DecisionCallback = sim::UniqueFunction<void(PlacementDecision)>;

  struct Options {
    /// Socket round trip between client and server (loopback).
    Duration request_overhead = Duration::micros(80.0);
    /// Algorithm 2's latency hiding: keep running on a CPU while the
    /// XCLBIN loads.  Off = traditional blocking configure-on-use
    /// (ablation 3 in DESIGN.md).
    bool hide_reconfiguration = true;
  };

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t to_x86 = 0;
    std::uint64_t to_arm = 0;
    std::uint64_t to_fpga = 0;
    std::uint64_t reconfigurations_started = 0;
  };

  SchedulerServer(sim::Simulation& sim, LoadMonitor& monitor,
                  fpga::FpgaDevice& device, ThresholdTable& table,
                  std::vector<fpga::XclbinImage> xclbins)
      : SchedulerServer(sim, monitor, device, table, std::move(xclbins),
                        Options(), Logger{}) {}
  SchedulerServer(sim::Simulation& sim, LoadMonitor& monitor,
                  fpga::FpgaDevice& device, ThresholdTable& table,
                  std::vector<fpga::XclbinImage> xclbins, Options opts,
                  Logger log = {});

  /// Handle one client request for `app` (Algorithm 2 main loop body).
  /// The callback fires after the socket round trip with the decision.
  void request_placement(std::string_view app, DecisionCallback on_decision);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Options& options() const { return opts_; }

  /// The image that contains `kernel`, or nullptr (the server's "Query
  /// Available HW Kernels" bookkeeping).  O(log kernels) via an index
  /// built at construction.
  [[nodiscard]] const fpga::XclbinImage* image_with(
      std::string_view kernel) const;

  /// Marshal the whole threshold table as TableSync wire messages (the
  /// server pushes these to clients so their local copies track the
  /// refined thresholds).
  [[nodiscard]] std::vector<std::vector<std::byte>> broadcast_table() const;

 private:
  /// One in-flight request: the encoded frame travelling the simulated
  /// socket plus the client's decision callback.  Slots recycle through
  /// the pool's free list; a released slot's wire buffer keeps its
  /// capacity, so the steady state re-uses a few warm buffers instead
  /// of allocating.
  struct PendingRequest {
    std::vector<std::byte> wire;
    DecisionCallback on_decision;
  };

  void maybe_start_reconfiguration(std::string_view kernel);
  /// Event body: decode the frame in `slot`, decide, answer the client.
  void finish_request(std::uint32_t slot);

  sim::Simulation& sim_;
  LoadMonitor& monitor_;
  fpga::FpgaDevice& device_;
  ThresholdTable& table_;
  std::vector<fpga::XclbinImage> xclbins_;
  /// kernel name -> index into xclbins_, built once at construction
  /// (replaces the per-request linear scan over images x kernels).
  std::map<std::string, std::size_t, std::less<>> kernel_index_;
  Options opts_;
  Logger log_;
  Stats stats_;
  sim::SlotPool<PendingRequest> pending_;
};

}  // namespace xartrek::runtime
