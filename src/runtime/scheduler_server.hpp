// The scheduler server -- placement policy (paper Algorithm 2).
//
// Runs on the x86 host.  On initialization it queries the hardware
// kernels in the loaded XCLBIN, establishes the client socket, and
// starts the x86-load timer.  Each application request is answered with
// a placement decision derived from the threshold table, the sampled
// x86 load, and kernel residency; when the needed kernel is absent and
// the load is past FPGA_THR, the server starts a background
// reconfiguration while the function continues on a CPU -- hiding the
// transfer and programming latency (paper §3.4).
//
// Steady-state request path (submit -> encode -> decode -> decide ->
// callback) is allocation-free and O(log n): the decision callback
// lives in a pooled PendingRequest slot, the wire frame packs into its
// batch's arena, the scheduled event captures only {server, batch}
// (trivially copyable, stays inside the engine's inline buffer), the
// decode borrows string_views straight from the arena, and the app
// name is interned to a dense AppId against the threshold table
// without materializing a std::string.
//
// Requests arriving at the same instant (a spike tick) are batched into
// ONE decision pass: they share a single pooled Batch, one scheduled
// event, one *vectorized decode sweep* over the packed frame arena
// (decode_placement_request_arena -- a single pass in memory order
// instead of one decode_message_view call per request), one
// load-monitor sample, and one kernel-residency probe per distinct app
// -- the per-request constant at spike scale is a handful of bounds
// checks plus the Algorithm-2 arithmetic.  A batch of one behaves
// exactly like the unbatched path, so request/decision semantics are
// unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/log.hpp"
#include "common/time.hpp"
#include "fpga/device.hpp"
#include "fpga/slots.hpp"
#include "runtime/load_monitor.hpp"
#include "runtime/protocol.hpp"
#include "runtime/target.hpp"
#include "runtime/threshold_table.hpp"
#include "sim/callback.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"
#include "sim/slot_pool.hpp"
#include "sim/topology.hpp"

namespace xartrek::runtime {

/// The server's answer to one placement request.
struct PlacementDecision {
  Target target = Target::kX86;
  /// True when this request triggered a background reconfiguration.
  bool reconfiguration_started = false;
  /// True when the executor must wait for the FPGA to become ready
  /// before offloading (only under the blocking-configuration ablation).
  bool wait_for_fpga = false;
  int observed_load = 0;
};

/// Pure policy core of Algorithm 2 (lines 9-31), exposed for exhaustive
/// property testing.  `wants_reconfigure` is set when the policy asks
/// for the FPGA to be (re)configured in the background.
[[nodiscard]] Target decide_placement(int x86_load, int arm_threshold,
                                      int fpga_threshold,
                                      bool hw_kernel_available,
                                      bool& wants_reconfigure);

/// Operator-facing explanation of what Algorithm 2 would decide and
/// which pseudocode branch fires -- for dashboards and postmortems
/// ("why did digit2000 run on x86 at 14:03?").
[[nodiscard]] std::string explain_placement(int x86_load, int arm_threshold,
                                            int fpga_threshold,
                                            bool hw_kernel_available);

/// The server.
class SchedulerServer {
 public:
  using DecisionCallback = sim::UniqueFunction<void(PlacementDecision)>;

  struct Options {
    /// Socket round trip between client and server (loopback).
    Duration request_overhead = Duration::micros(80.0);
    /// Algorithm 2's latency hiding: keep running on a CPU while the
    /// XCLBIN loads.  Off = traditional blocking configure-on-use
    /// (ablation 3 in DESIGN.md).
    bool hide_reconfiguration = true;
    /// When the clients live on another simulation shard, decisions are
    /// delivered through this channel (its latency replaces the local
    /// callback's zero-cost return hop).  Inert by default.
    sim::CrossShardChannel reply_channel;
    /// Eviction/replication tunables for the slot scheduler the server
    /// builds when the device is in slot mode.  Ignored otherwise.
    fpga::SlotScheduler::Options slot_policy;
  };

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t to_x86 = 0;
    std::uint64_t to_arm = 0;
    std::uint64_t to_fpga = 0;
    std::uint64_t reconfigurations_started = 0;
    /// Decision passes (same-instant requests share one batch).
    std::uint64_t batches = 0;
    std::uint64_t max_batch = 0;
    /// Kernel-residency lookups actually performed; within a batch the
    /// probe is shared across requests for the same app.
    std::uint64_t residency_probes = 0;
    // Health checking (all zero while health checks are off).
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t heartbeats_missed = 0;  ///< timeouts with no reply
    /// Replies that arrived after their timeout already fired; they are
    /// ignored (the eviction decision stands until an in-time reply).
    std::uint64_t late_replies = 0;
    std::uint64_t evictions = 0;       ///< healthy -> evicted transitions
    std::uint64_t reinstatements = 0;  ///< evicted -> healthy transitions
    // Circuit breaker (gray-failure degradation; zero while closed).
    std::uint64_t slow_replies = 0;    ///< in-time but above slow_reply
    std::uint64_t breaker_trips = 0;   ///< closed -> open transitions
    std::uint64_t breaker_closes = 0;  ///< half-open -> closed transitions
  };

  /// Per-cell circuit breaker over the FPGA target.  Distinct from
  /// eviction: an evicted target is treated as dead (kernels read
  /// absent); an *open breaker* merely demotes the target in placement
  /// scoring -- already-resident kernels stay callable under enough
  /// load, but the bar is raised and no new reconfigurations start.
  enum class BreakerState : std::uint8_t {
    kClosed,    ///< normal scoring
    kOpen,      ///< gray target: demoted, no new programmings
    kHalfOpen,  ///< cooldown elapsed, one good probe seen; one more
                ///< closes it, any gray signal re-opens it
  };

  /// Heartbeat tunables.  Health checking is opt-in (start_health_checks);
  /// with it off the server's event schedule is bit-identical to pre-PR
  /// behavior and `fpga_healthy()` is pinned true.
  struct HealthOptions {
    /// Ping cadence.
    Duration period = Duration::ms(10.0);
    /// Device-side round trip of one ping when the card is up.
    Duration reply_latency = Duration::micros(200.0);
    /// How long after the ping the server waits before declaring a miss.
    Duration timeout = Duration::ms(2.0);
    /// Consecutive misses before the target is evicted.
    std::uint32_t miss_limit = 3;
    /// An in-time reply slower than this is a *gray* signal: the target
    /// answers, but sluggishly.  Feeds the circuit breaker, not the
    /// evictor.  Sits between the healthy reply (200us) and the miss
    /// timeout so a 4x-slowed cell reads gray, not dead.
    Duration slow_reply = Duration::ms(0.5);
    /// Consecutive gray signals (timeouts or slow replies) that trip
    /// the breaker open.  Kept below miss_limit so degradation is
    /// noticed before death would be.
    std::uint32_t breaker_trip_limit = 2;
    /// Open-state dwell before half-open probing may begin.
    Duration breaker_cooldown = Duration::ms(20.0);
    /// While the breaker is open or half-open, the app's FPGA threshold
    /// is inflated by this factor (plus one) in placement scoring --
    /// demotion, not eviction: resident kernels stay callable under
    /// enough load.
    double breaker_demotion_factor = 2.0;
  };

  SchedulerServer(sim::Simulation& sim, LoadMonitor& monitor,
                  fpga::FpgaDevice& device, ThresholdTable& table,
                  std::vector<fpga::XclbinImage> xclbins)
      : SchedulerServer(sim, monitor, device, table, std::move(xclbins),
                        Options(), Logger{}) {}
  SchedulerServer(sim::Simulation& sim, LoadMonitor& monitor,
                  fpga::FpgaDevice& device, ThresholdTable& table,
                  std::vector<fpga::XclbinImage> xclbins, Options opts,
                  Logger log = {});

  /// Handle one client request for `app` (Algorithm 2 main loop body).
  /// The callback fires after the socket round trip with the decision.
  void request_placement(std::string_view app, DecisionCallback on_decision) {
    request_placement(app, /*pid=*/0, std::move(on_decision));
  }

  /// Same, carrying the caller's trace context: `pid` rides in the
  /// existing PlacementRequestMsg::pid wire field through the batch
  /// pass, so an attached tracer can tag the per-request decision with
  /// the submitting job's trace id.  0 = untracked (the default
  /// overload); the decision itself is identical either way.
  void request_placement(std::string_view app, std::uint32_t pid,
                         DecisionCallback on_decision);

  /// Topology registration: the server is node `self`, its clients node
  /// `client`.  When the partitioner put them on different shards,
  /// decisions are delivered through the registered edge's channel
  /// (its latency is the far-side hop); otherwise the decision
  /// callback keeps running locally.  Replaces hand-assembling
  /// Options::reply_channel at call sites.
  void register_reply(sim::PartitionedEngine& eng, sim::NodeId self,
                      sim::NodeId client) {
    opts_.reply_channel = eng.channel_between(self, client);
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Options& options() const { return opts_; }

  /// Start the heartbeat loop against the FPGA target.  Each tick pings
  /// the device: an online card answers `reply_latency` later, a dead
  /// one never does, and a reply landing after its `timeout` is *late*
  /// -- counted, but ignored, so an eviction already decided is not
  /// retroactively undone by a stale packet.  `miss_limit` consecutive
  /// timeouts evict the target: `fpga_healthy()` goes false and
  /// Algorithm 2 stops routing to (or reconfiguring) the card until an
  /// in-time reply reinstates it.
  void start_health_checks(HealthOptions opts);
  void start_health_checks();  // default tunables
  void stop_health_checks();
  [[nodiscard]] bool health_checks_active() const { return health_on_; }

  /// False while the heartbeat tracker has the FPGA target evicted.
  /// Always true when health checks are off.
  [[nodiscard]] bool fpga_healthy() const { return fpga_healthy_; }

  /// Circuit-breaker state (kClosed whenever health checks are off).
  [[nodiscard]] BreakerState breaker_state() const { return breaker_; }
  [[nodiscard]] bool breaker_closed() const {
    return breaker_ == BreakerState::kClosed;
  }

  /// Gray-failure hook (kCellSlow): scale the modeled device-side
  /// heartbeat reply latency -- the ping handler on a slowed cell
  /// answers late, which is exactly the slow-reply signal the breaker
  /// watches for.  1.0 restores nominal.
  void set_reply_latency_scale(double scale) {
    XAR_EXPECTS(scale > 0.0);
    reply_latency_scale_ = scale;
  }
  [[nodiscard]] double reply_latency_scale() const {
    return reply_latency_scale_;
  }

  /// Slot-aware residency of `kernel` as the placement policy sees it:
  /// an evicted (unhealthy) target answers "not resident" regardless of
  /// what physically sits on the fabric.  Replaces peeking at
  /// image_with() + has_kernel() from outside the server.
  [[nodiscard]] fpga::ResidencyView residency(std::string_view kernel) const;

  /// Warm path: make `kernel` resident if it isn't already -- a slot
  /// programming through the slot scheduler, or a whole-image download
  /// otherwise.  Returns true when a (re)configuration was started.
  /// No-op while the port is busy or the target is unhealthy.  Not
  /// counted in Stats::reconfigurations_started (which tracks
  /// Algorithm-2-driven reconfigurations only).
  bool ensure_resident(std::string_view kernel);

  /// The slot scheduler, when the device is virtualized (else null).
  [[nodiscard]] const fpga::SlotScheduler* slot_scheduler() const {
    return slots_.get();
  }

  /// Marshal the whole threshold table as TableSync wire messages (the
  /// server pushes these to clients so their local copies track the
  /// refined thresholds).
  [[nodiscard]] std::vector<std::vector<std::byte>> broadcast_table() const;

  /// Link the stats counters into a metrics registry under `prefix`
  /// (and the slot scheduler's, when present, under `prefix + ".slots"`).
  void register_metrics(obs::Registry& registry,
                        const std::string& prefix) const;

  /// Emit scheduler spans on `lane` (the shard this server runs on):
  /// "sched.batch" around each decision pass, "sched.decide" instants
  /// per traced request, "sched.reconfigure" instants when Algorithm 2
  /// starts a background download, and "fpga.reconfigure" around
  /// whole-image downloads.  Forwards to the slot scheduler (which adds
  /// "fpga.slot_program") when the device is virtualized.  Null
  /// detaches.
  void set_tracer(obs::Tracer* tracer, std::uint32_t lane) {
    tracer_ = tracer;
    trace_lane_ = lane;
    if (slots_ != nullptr) slots_->set_tracer(tracer, lane, &sim_);
  }

 private:
  /// One in-flight request: the client's decision callback.  The wire
  /// frame itself lives packed in its batch's arena (below).  Slots
  /// recycle through the pool's free list; `next` chains same-instant
  /// requests into their batch's intrusive FIFO.
  struct PendingRequest {
    DecisionCallback on_decision;
    std::uint32_t next = sim::SlotPool<int>::kNoSlot;
  };

  /// Same-instant requests awaiting the shared decision pass.  Their
  /// encoded frames pack back to back into `arena` (one warm buffer per
  /// batch slot, capacity kept across recycles), so the decision pass
  /// decodes the whole spike tick in a single vectorized sweep instead
  /// of one decode_message_view call per request.
  struct Batch {
    std::uint32_t head = sim::SlotPool<int>::kNoSlot;
    std::uint32_t tail = sim::SlotPool<int>::kNoSlot;
    std::uint32_t count = 0;
    std::vector<std::byte> arena;
    TimePoint at;  ///< instant the batch opened (span start)
  };

  /// The image that contains `kernel`, or nullptr (the server's "Query
  /// Available HW Kernels" bookkeeping).  O(log kernels) via an index
  /// built at construction.  Whole-image mode only; external callers
  /// use residency()/ensure_resident() instead of the raw image.
  [[nodiscard]] const fpga::XclbinImage* image_with(
      std::string_view kernel) const;

  void maybe_start_reconfiguration(std::string_view kernel);
  /// "fpga.reconfigure" span around a whole-image download (invalid ref
  /// / no-op when no tracer is attached).
  obs::SpanRef begin_reconfigure_span();
  void end_reconfigure_span(obs::SpanRef span);
  /// One heartbeat tick: ping, arm the timeout, schedule the next tick.
  void heartbeat_tick();
  void heartbeat_reply(std::uint64_t seq, bool slow);
  void heartbeat_timeout(std::uint64_t seq);
  /// Breaker inputs: one gray signal (timeout / slow reply) or one
  /// clean in-time reply.
  void breaker_note_gray();
  void breaker_note_ok();
  /// Event body: one decision pass over every request in `batch_slot`
  /// (one arena decode sweep, one load sample, shared residency
  /// probes), answering each client.
  void finish_batch(std::uint32_t batch_slot);
  /// Decide and answer the single request in `slot` against the
  /// batch-shared load sample and its decoded view.
  void finish_one(std::uint32_t slot, int load,
                  const PlacementRequestView& request);
  /// Run or remotely deliver one client's decision callback.
  void answer(DecisionCallback cb, PlacementDecision decision);

  sim::Simulation& sim_;
  LoadMonitor& monitor_;
  fpga::FpgaDevice& device_;
  ThresholdTable& table_;
  std::vector<fpga::XclbinImage> xclbins_;
  /// kernel name -> index into xclbins_, built once at construction
  /// (replaces the per-request linear scan over images x kernels).
  std::map<std::string, std::size_t, std::less<>> kernel_index_;
  Options opts_;
  Logger log_;
  Stats stats_;
  sim::SlotPool<PendingRequest> pending_;
  sim::SlotPool<Batch> batches_;
  /// The batch still accepting requests (kNoSlot when none), and the
  /// instant it was opened -- a request at a later instant opens a
  /// fresh batch with its own round-trip deadline.
  std::uint32_t open_batch_ = sim::SlotPool<int>::kNoSlot;
  TimePoint open_batch_at_;
  /// The eviction/replication policy when the device is in slot mode;
  /// null against a whole-image device.
  std::unique_ptr<fpga::SlotScheduler> slots_;
  /// Per-batch memo of kernel residency by app (cleared per pass; keeps
  /// capacity, so the steady state stays allocation-free).  Each entry
  /// is revalidated with FpgaDevice::residency_current -- in slot mode
  /// a cached answer keys on *its* slot's version, so batch-mates
  /// churning other slots don't force a re-probe.
  std::vector<std::pair<AppId, fpga::ResidencyView>> probe_cache_;
  /// Decision-pass scratch: the finishing batch's arena is swapped in
  /// here (a re-entrant request_placement from a decision callback
  /// appends to a *new* batch's arena, never this one) and the decoded
  /// views alias it.  Both keep their capacity across passes.
  std::vector<std::byte> arena_scratch_;
  std::vector<PlacementRequestView> views_scratch_;

  // Heartbeat state.  Sequence numbers disambiguate the reply/timeout
  // race: a reply for seq s is *late* exactly when s's timeout already
  // fired, and a timeout is a miss exactly when no in-time reply for s
  // (or a later ping) arrived first.
  HealthOptions health_opts_;
  bool health_on_ = false;
  bool fpga_healthy_ = true;
  std::uint64_t heartbeat_seq_ = 0;    ///< last ping sent
  std::uint64_t replied_seq_ = 0;      ///< highest seq answered in time
  std::uint64_t expired_seq_ = 0;      ///< highest seq whose timeout fired
  std::uint32_t consecutive_misses_ = 0;
  /// Generation guard: stop/start invalidates in-flight tick events.
  std::uint64_t health_generation_ = 0;

  // Circuit breaker state (closed while health checks are off).
  BreakerState breaker_ = BreakerState::kClosed;
  std::uint32_t breaker_gray_streak_ = 0;
  TimePoint breaker_opened_at_;
  double reply_latency_scale_ = 1.0;

  // Observability (inert until set_tracer / register_metrics).
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t trace_lane_ = 0;
};

}  // namespace xartrek::runtime
