// The threshold table.
//
// One row per application (paper §3.1, step G output): the hardware
// kernel implementing its selected function, the x86 CPU load above
// which migrating to the FPGA beats staying (FPGA_THR), and the load
// above which migrating to ARM beats staying (ARM_THR).  The table also
// carries the in-isolation execution times of the three scenarios --
// Algorithm 1 compares fresh measurements against them and refines the
// thresholds at run time.
//
// Loads are in the paper's unit: number of resident processes on the
// x86 server.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "runtime/target.hpp"

namespace xartrek::runtime {

/// One application's row.
struct ThresholdEntry {
  std::string app;
  std::string kernel_name;   ///< hardware kernel of the selected function
  int fpga_threshold = 0;    ///< FPGA_THR (x86 load, process count)
  int arm_threshold = 0;     ///< ARM_THR
  /// Reference whole-run execution times per scenario (step G / refined).
  Duration x86_exec = Duration::zero();
  Duration arm_exec = Duration::zero();
  Duration fpga_exec = Duration::zero();

  [[nodiscard]] Duration exec_for(Target t) const {
    switch (t) {
      case Target::kX86:  return x86_exec;
      case Target::kArm:  return arm_exec;
      case Target::kFpga: return fpga_exec;
    }
    return Duration::zero();
  }
  void set_exec(Target t, Duration d) {
    switch (t) {
      case Target::kX86:  x86_exec = d; break;
      case Target::kArm:  arm_exec = d; break;
      case Target::kFpga: fpga_exec = d; break;
    }
  }
};

/// Dense identifier of an interned application name: the index of its
/// row.  Ids are stable for the lifetime of the table (upsert replaces
/// a row in place, never renumbers).
using AppId = std::uint32_t;
inline constexpr AppId kInvalidAppId = 0xFFFF'FFFFu;

/// The shared table.  The scheduler server reads it per request; every
/// application's client updates it on function return.  (In the real
/// system the table crosses a socket; here readers and writers share the
/// object within the simulation's single event loop.)
///
/// Rows live in a dense AppId-indexed vector; the string-keyed edge is
/// a transparent (heterogeneous) index so a `string_view` straight off
/// the wire resolves without materializing a temporary std::string.
/// Components that run per-request should resolve their AppId once and
/// use the id overloads, which are plain vector indexing.
class ThresholdTable {
 public:
  /// Add or replace a row.  Returns the row's (new or existing) id.
  AppId upsert(ThresholdEntry entry);

  /// Interned fast path: O(1) vector indexing, no string compares.
  [[nodiscard]] AppId id_of(std::string_view app) const {
    const auto it = index_.find(app);
    return it == index_.end() ? kInvalidAppId : it->second;
  }
  [[nodiscard]] const ThresholdEntry& at(AppId id) const {
    XAR_EXPECTS(id < entries_.size());
    return entries_[id];
  }
  [[nodiscard]] ThresholdEntry& at_mutable(AppId id) {
    XAR_EXPECTS(id < entries_.size());
    return entries_[id];
  }

  /// String-keyed edge (accepts std::string, string_view, literals).
  [[nodiscard]] bool contains(std::string_view app) const {
    return index_.find(app) != index_.end();
  }
  [[nodiscard]] const ThresholdEntry& at(std::string_view app) const;
  [[nodiscard]] ThresholdEntry& at_mutable(std::string_view app);

  /// All rows, in insertion (AppId) order -- iterate this instead of
  /// materializing a name list and re-looking each name up.
  [[nodiscard]] std::span<const ThresholdEntry> entries() const {
    return entries_;
  }

  /// Names in sorted order (diagnostics and the text serializer, which
  /// needs a deterministic order independent of insertion history).
  [[nodiscard]] std::vector<std::string> app_names() const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<ThresholdEntry> entries_;              ///< AppId-indexed rows
  std::map<std::string, AppId, std::less<>> index_;  ///< transparent lookup
};

}  // namespace xartrek::runtime
