// The threshold table.
//
// One row per application (paper §3.1, step G output): the hardware
// kernel implementing its selected function, the x86 CPU load above
// which migrating to the FPGA beats staying (FPGA_THR), and the load
// above which migrating to ARM beats staying (ARM_THR).  The table also
// carries the in-isolation execution times of the three scenarios --
// Algorithm 1 compares fresh measurements against them and refines the
// thresholds at run time.
//
// Loads are in the paper's unit: number of resident processes on the
// x86 server.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "runtime/target.hpp"

namespace xartrek::runtime {

/// One application's row.
struct ThresholdEntry {
  std::string app;
  std::string kernel_name;   ///< hardware kernel of the selected function
  int fpga_threshold = 0;    ///< FPGA_THR (x86 load, process count)
  int arm_threshold = 0;     ///< ARM_THR
  /// Reference whole-run execution times per scenario (step G / refined).
  Duration x86_exec = Duration::zero();
  Duration arm_exec = Duration::zero();
  Duration fpga_exec = Duration::zero();

  [[nodiscard]] Duration exec_for(Target t) const {
    switch (t) {
      case Target::kX86:  return x86_exec;
      case Target::kArm:  return arm_exec;
      case Target::kFpga: return fpga_exec;
    }
    return Duration::zero();
  }
  void set_exec(Target t, Duration d) {
    switch (t) {
      case Target::kX86:  x86_exec = d; break;
      case Target::kArm:  arm_exec = d; break;
      case Target::kFpga: fpga_exec = d; break;
    }
  }
};

/// The shared table.  The scheduler server reads it per request; every
/// application's client updates it on function return.  (In the real
/// system the table crosses a socket; here readers and writers share the
/// object within the simulation's single event loop.)
class ThresholdTable {
 public:
  /// Add or replace a row.
  void upsert(ThresholdEntry entry);

  [[nodiscard]] bool contains(const std::string& app) const {
    return entries_.contains(app);
  }
  [[nodiscard]] const ThresholdEntry& at(const std::string& app) const;
  [[nodiscard]] ThresholdEntry& at_mutable(const std::string& app);

  [[nodiscard]] std::vector<std::string> app_names() const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, ThresholdEntry> entries_;
};

}  // namespace xartrek::runtime
