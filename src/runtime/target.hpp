// Migration targets (the paper's migration flag).
//
// The scheduler client monitors a per-function flag whose value selects
// where the next invocation executes: 0 = x86 (do not migrate), 1 = ARM
// (software migration via the Popcorn run-time), 2 = FPGA (hardware
// migration via XRT) -- paper §3.2, Figure 2 ("Flag equals target ID").
#pragma once

namespace xartrek::runtime {

enum class Target : int { kX86 = 0, kArm = 1, kFpga = 2 };

[[nodiscard]] constexpr const char* to_string(Target t) {
  switch (t) {
    case Target::kX86:  return "x86";
    case Target::kArm:  return "ARM";
    case Target::kFpga: return "FPGA";
  }
  return "?";
}

}  // namespace xartrek::runtime
