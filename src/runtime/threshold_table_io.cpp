#include "runtime/threshold_table_io.hpp"

#include <limits>
#include <sstream>

#include "common/assert.hpp"

namespace xartrek::runtime {

std::string serialize_threshold_table(const ThresholdTable& table) {
  std::ostringstream os;
  // Full double precision: the reference times feed Algorithm 1's
  // comparisons and must survive a round trip exactly.
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "# xar-trek threshold table (step G output)\n";
  for (const auto& app : table.app_names()) {
    const ThresholdEntry& e = table.at(app);
    os << "app " << e.app << " kernel " << e.kernel_name << " fpga_thr "
       << e.fpga_threshold << " arm_thr " << e.arm_threshold << " x86_ms "
       << e.x86_exec.to_ms() << " arm_ms " << e.arm_exec.to_ms()
       << " fpga_ms " << e.fpga_exec.to_ms() << "\n";
  }
  return os.str();
}

namespace {
[[noreturn]] void fail(int line, const std::string& msg) {
  throw Error("threshold table, line " + std::to_string(line) + ": " + msg);
}
}  // namespace

ThresholdTable parse_threshold_table(std::istream& is) {
  ThresholdTable table;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;
    if (keyword != "app") fail(lineno, "expected `app`");

    ThresholdEntry e;
    if (!(ls >> e.app)) fail(lineno, "app needs a name");
    bool have_kernel = false;
    bool have_fpga = false;
    bool have_arm = false;
    std::string key;
    while (ls >> key) {
      if (key == "kernel") {
        if (!(ls >> e.kernel_name)) fail(lineno, "kernel needs a value");
        have_kernel = true;
      } else if (key == "fpga_thr") {
        if (!(ls >> e.fpga_threshold) || e.fpga_threshold < 0) {
          fail(lineno, "fpga_thr needs a non-negative value");
        }
        have_fpga = true;
      } else if (key == "arm_thr") {
        if (!(ls >> e.arm_threshold) || e.arm_threshold < 0) {
          fail(lineno, "arm_thr needs a non-negative value");
        }
        have_arm = true;
      } else if (key == "x86_ms" || key == "arm_ms" || key == "fpga_ms") {
        double v = 0.0;
        if (!(ls >> v) || v < 0.0) fail(lineno, key + " needs a value");
        if (key == "x86_ms") e.x86_exec = Duration::ms(v);
        if (key == "arm_ms") e.arm_exec = Duration::ms(v);
        if (key == "fpga_ms") e.fpga_exec = Duration::ms(v);
      } else {
        fail(lineno, "unknown key `" + key + "`");
      }
    }
    if (!have_kernel || !have_fpga || !have_arm) {
      fail(lineno, "entry for `" + e.app +
                       "` is missing kernel/fpga_thr/arm_thr");
    }
    if (table.contains(e.app)) {
      fail(lineno, "duplicate app `" + e.app + "`");
    }
    table.upsert(std::move(e));
  }
  return table;
}

ThresholdTable parse_threshold_table_string(const std::string& text) {
  std::istringstream is(text);
  return parse_threshold_table(is);
}

}  // namespace xartrek::runtime
