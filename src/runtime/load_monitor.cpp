#include "runtime/load_monitor.hpp"

namespace xartrek::runtime {

LoadMonitor::LoadMonitor(sim::Simulation& sim, const hw::CpuCluster& x86,
                         Duration period)
    : sim_(sim), x86_(x86), period_(period) {
  XAR_EXPECTS(period > Duration::zero());
  sample();
}

void LoadMonitor::sample() {
  last_sample_ = x86_.load();
  ++samples_;
  tick_ = sim_.schedule_in(period_, [this] { sample(); });
}

}  // namespace xartrek::runtime
