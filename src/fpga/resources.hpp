// FPGA logic-resource vectors.
//
// Used by the HLS compiler model (to estimate a kernel's footprint), the
// XCLBIN partitioner (to bin-pack kernels into the programmable region),
// and the device model (to validate loads).
#pragma once

#include <cstdint>
#include <ostream>

#include "common/assert.hpp"

namespace xartrek::fpga {

/// A resource vector over the five FPGA primitive types.
struct FpgaResources {
  std::uint64_t luts = 0;
  std::uint64_t ffs = 0;
  std::uint64_t brams = 0;  ///< 36Kb block RAMs
  std::uint64_t urams = 0;
  std::uint64_t dsps = 0;

  constexpr FpgaResources operator+(const FpgaResources& o) const {
    return {luts + o.luts, ffs + o.ffs, brams + o.brams, urams + o.urams,
            dsps + o.dsps};
  }
  constexpr FpgaResources& operator+=(const FpgaResources& o) {
    luts += o.luts;
    ffs += o.ffs;
    brams += o.brams;
    urams += o.urams;
    dsps += o.dsps;
    return *this;
  }
  /// Component-wise subtraction; requires *this >= o component-wise.
  FpgaResources operator-(const FpgaResources& o) const {
    XAR_EXPECTS(fits_within(o, *this));
    return {luts - o.luts, ffs - o.ffs, brams - o.brams, urams - o.urams,
            dsps - o.dsps};
  }

  /// Component-wise integer division: carving the usable region into
  /// `n` equal partial-reconfiguration slots.  Rounds down, so `n`
  /// slots always fit back inside the original vector.
  constexpr FpgaResources operator/(std::uint64_t n) const {
    XAR_EXPECTS(n >= 1);
    return {luts / n, ffs / n, brams / n, urams / n, dsps / n};
  }

  constexpr bool operator==(const FpgaResources&) const = default;

  /// True when `a` fits component-wise inside `b`.
  [[nodiscard]] static constexpr bool fits_within(const FpgaResources& a,
                                                  const FpgaResources& b) {
    return a.luts <= b.luts && a.ffs <= b.ffs && a.brams <= b.brams &&
           a.urams <= b.urams && a.dsps <= b.dsps;
  }

  /// Largest utilization fraction across resource types relative to `cap`
  /// (the bin-packing "size" of a kernel).  Requires every cap component
  /// that this vector uses to be nonzero.
  [[nodiscard]] double dominant_fraction(const FpgaResources& cap) const;
};

inline std::ostream& operator<<(std::ostream& os, const FpgaResources& r) {
  return os << "{LUT:" << r.luts << " FF:" << r.ffs << " BRAM:" << r.brams
            << " URAM:" << r.urams << " DSP:" << r.dsps << "}";
}

/// Total resources of a Xilinx Alveo U50 (UltraScale+ XCU50).
[[nodiscard]] constexpr FpgaResources alveo_u50_total() {
  return FpgaResources{872'000, 1'743'000, 1'344, 640, 5'952};
}

/// Resources consumed by the U50 platform shell (host interface, HBM
/// controllers, reconfiguration logic) -- unavailable to kernels.
[[nodiscard]] constexpr FpgaResources alveo_u50_shell() {
  return FpgaResources{170'000, 340'000, 270, 28, 1'180};
}

}  // namespace xartrek::fpga
