#include "fpga/resources.hpp"

#include <algorithm>

namespace xartrek::fpga {

double FpgaResources::dominant_fraction(const FpgaResources& cap) const {
  double worst = 0.0;
  auto consider = [&worst](std::uint64_t used, std::uint64_t avail) {
    if (used == 0) return;
    XAR_EXPECTS(avail > 0);
    worst = std::max(worst,
                     static_cast<double>(used) / static_cast<double>(avail));
  };
  consider(luts, cap.luts);
  consider(ffs, cap.ffs);
  consider(brams, cap.brams);
  consider(urams, cap.urams);
  consider(dsps, cap.dsps);
  return worst;
}

}  // namespace xartrek::fpga
