#include "fpga/slots.hpp"

#include <algorithm>
#include <limits>

#include "obs/registry.hpp"

namespace xartrek::fpga {

SlotScheduler::SlotScheduler(FpgaDevice& device, Options opts)
    : device_(device), opts_(opts) {
  XAR_EXPECTS(opts_.fold_window >= 1);
  XAR_EXPECTS(opts_.ewma_alpha > 0.0 && opts_.ewma_alpha <= 1.0);
  XAR_EXPECTS(opts_.max_replicas >= 1);
}

std::size_t SlotScheduler::find(std::string_view kernel) const {
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].config.name == kernel) return i;
  }
  return tenants_.size();
}

void SlotScheduler::register_kernel(const HwKernelConfig& kernel) {
  if (find(kernel.name) != tenants_.size()) return;
  Tenant t;
  t.config = kernel;
  tenants_.push_back(std::move(t));
}

bool SlotScheduler::knows(std::string_view kernel) const {
  return find(kernel) != tenants_.size();
}

void SlotScheduler::note_demand(std::string_view kernel) {
  const std::size_t idx = find(kernel);
  if (idx == tenants_.size()) return;
  ++tenants_[idx].hits;
  if (++since_fold_ < opts_.fold_window) return;
  since_fold_ = 0;
  for (Tenant& t : tenants_) {
    t.ewma = (1.0 - opts_.ewma_alpha) * t.ewma +
             opts_.ewma_alpha * static_cast<double>(t.hits);
    t.hits = 0;
  }
}

double SlotScheduler::demand(std::string_view kernel) const {
  const std::size_t idx = find(kernel);
  if (idx == tenants_.size()) return 0.0;
  return score(tenants_[idx]);
}

std::uint32_t SlotScheduler::fit_cap(const HwKernelConfig& k) const {
  const FpgaResources& cap = device_.slot_capacity();
  FpgaResources used;
  std::uint32_t n = 0;
  while (n < opts_.max_replicas) {
    used += k.resources;
    if (!FpgaResources::fits_within(used, cap)) break;
    ++n;
  }
  return n;
}

void SlotScheduler::ensure_slot_health() {
  if (slot_health_.size() < device_.slot_count()) {
    slot_health_.resize(device_.slot_count());
  }
}

void SlotScheduler::record_result(std::uint32_t slot, ReconfigureResult r) {
  if (!succeeded(r)) ++stats_.failed;
  ensure_slot_health();
  if (slot >= slot_health_.size()) return;
  SlotHealth& h = slot_health_[slot];
  if (r == ReconfigureResult::kInjectedFailure ||
      r == ReconfigureResult::kTornWrite) {
    // Bad ICAP writes / torn programmings point at the slot's region;
    // enough of them in a row and the region is written off for the
    // run.  kOfflineDrop is the whole card's fault, not this slot's,
    // so it neither counts nor resets.
    if (h.quarantined) return;
    if (++h.consecutive_failures >= opts_.quarantine_limit) {
      h.quarantined = true;
      ++stats_.quarantined;
    }
    return;
  }
  if (succeeded(r)) h.consecutive_failures = 0;
}

std::uint32_t SlotScheduler::quarantined_slots() const {
  std::uint32_t n = 0;
  for (const SlotHealth& h : slot_health_) {
    if (h.quarantined) ++n;
  }
  return n;
}

void SlotScheduler::program(std::uint32_t slot, const Tenant& tenant,
                            std::uint32_t replicas) {
  if (tracer_ != nullptr && trace_clock_ != nullptr) {
    // Wrap the programming window in a span; the typed completion
    // closes it whether the write lands, fails, or tears.
    obs::SpanRef span =
        tracer_->begin(trace_lane_, obs::kTrackFpga, "fpga.slot_program",
                       /*trace_id=*/0, trace_clock_->now());
    device_.reconfigure_slot(slot, tenant.config, replicas,
                             [this, slot, span](ReconfigureResult r) {
                               tracer_->end(span, trace_clock_->now());
                               record_result(slot, r);
                             });
    return;
  }
  device_.reconfigure_slot(slot, tenant.config, replicas,
                           [this, slot](ReconfigureResult r) {
                             record_result(slot, r);
                           });
}

bool SlotScheduler::provision(std::string_view kernel) {
  // One in-flight decision at a time: while the port programs (or holds
  // a queue), demand keeps accumulating and the next idle pass decides
  // with fresher numbers.
  if (!device_.slot_mode() || device_.reconfiguring() || device_.offline())
    return false;
  ensure_slot_health();
  const std::size_t idx = find(kernel);
  if (idx == tenants_.size()) return false;
  const Tenant& claimant = tenants_[idx];
  const std::uint32_t cap = fit_cap(claimant.config);
  if (cap == 0) {
    ++stats_.denied_no_fit;
    return false;
  }
  const double mine = score(claimant);

  const ResidencyView view = device_.residency(kernel);
  if (view.resident()) {
    // Replicate-hottest: grow one CU when this tenant clearly dominates
    // every other and the slot has area left.  A quarantined slot keeps
    // serving what it already holds but never reprograms.
    if (view.cus >= cap || quarantined(view.slot)) return false;
    double best_other = 0.0;
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      if (i == idx) continue;
      best_other = std::max(best_other, score(tenants_[i]));
    }
    if (mine < opts_.min_evict_demand ||
        mine <= opts_.replicate_margin * best_other) {
      return false;
    }
    program(view.slot, claimant, view.cus + 1);
    ++stats_.programs;
    ++stats_.replications;
    return true;
  }

  // Fresh placement: lowest empty slot wins.  With the port idle (the
  // early-out above) every slot is either empty or loaded.  Quarantined
  // slots are out of rotation entirely; with every slot quarantined the
  // scan finds nothing and the claimant stays on the CPU.
  const std::uint32_t slots = device_.slot_count();
  std::uint32_t coldest_slot = kNoSlot;
  double coldest = std::numeric_limits<double>::infinity();
  for (std::uint32_t s = 0; s < slots; ++s) {
    if (quarantined(s)) continue;
    const auto resident = device_.slot_kernel(s);
    if (!resident.has_value()) {
      program(s, claimant, 1);
      ++stats_.programs;
      return true;
    }
    const std::size_t r = find(*resident);
    const double sc = r == tenants_.size() ? 0.0 : score(tenants_[r]);
    if (sc < coldest) {
      coldest = sc;
      coldest_slot = s;
    }
  }
  // Evict-coldest, with hysteresis so two similar tenants don't ping-pong
  // a slot.
  if (coldest_slot != kNoSlot && mine >= opts_.min_evict_demand &&
      mine >= opts_.evict_margin * coldest) {
    program(coldest_slot, claimant, 1);
    ++stats_.programs;
    ++stats_.evictions;
    return true;
  }
  ++stats_.denied_cold;
  return false;
}

void SlotScheduler::register_metrics(obs::Registry& registry,
                                     const std::string& prefix) const {
  registry.link_counter(prefix + ".programs", &stats_.programs);
  registry.link_counter(prefix + ".evictions", &stats_.evictions);
  registry.link_counter(prefix + ".replications", &stats_.replications);
  registry.link_counter(prefix + ".denied_no_fit", &stats_.denied_no_fit);
  registry.link_counter(prefix + ".denied_cold", &stats_.denied_cold);
  registry.link_counter(prefix + ".failed", &stats_.failed);
  registry.link_counter(prefix + ".quarantined", &stats_.quarantined);
}

}  // namespace xartrek::fpga
