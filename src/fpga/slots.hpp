// Slot scheduler: the capacity-market policy above the virtualized
// device.
//
// The device (fpga::FpgaDevice in slot mode) exposes mechanism -- N
// partial-reconfiguration slots, each programmable with one kernel at a
// replication count.  This class is the policy: it tracks per-kernel
// demand with deterministic windowed EWMAs and decides which kernel
// deserves fabric (evict-coldest) and which resident kernel deserves
// more of it (replicate-hottest).  runtime::SchedulerServer consults it
// instead of doing binary whole-image swaps.
//
// Determinism: every piece of state is updated from simulation events
// on the device's shard, and decisions are pure functions of that state
// (no wall clock, no randomness, ties broken by registration order), so
// serial and parallel runs make identical choices.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fpga/device.hpp"
#include "obs/trace.hpp"

namespace xartrek::fpga {

/// Demand-driven eviction/replication policy over a slot-mode device.
class SlotScheduler {
 public:
  struct Options {
    /// Windowed EWMA: every `fold_window` demand notes, per-kernel hit
    /// counts fold into `ewma = (1-alpha)*ewma + alpha*hits`.  Folding
    /// on request count (not wall time) keeps the policy deterministic
    /// across serial/parallel runs.
    double ewma_alpha = 0.25;
    std::uint32_t fold_window = 32;
    /// Evict-coldest: a claimant takes a loaded slot only when its
    /// demand exceeds `evict_margin` x the coldest resident's demand
    /// (hysteresis against thrash) and at least `min_evict_demand`.
    double evict_margin = 2.0;
    double min_evict_demand = 1.0;
    /// Replicate-hottest: a resident kernel grows one CU when its
    /// demand exceeds `replicate_margin` x every other tenant's, up to
    /// `max_replicas` or the slot's area budget.
    double replicate_margin = 1.5;
    std::uint32_t max_replicas = 8;
    /// Gray-failure degradation: after this many *consecutive*
    /// kInjectedFailure/kTornWrite completions on one slot, the slot is
    /// quarantined -- the policy stops offering it and places on the
    /// remaining slots (or nowhere, leaving jobs on the CPU) instead of
    /// wedging the one-decision-in-flight loop on a bad region.
    std::uint32_t quarantine_limit = 3;
  };

  struct Stats {
    std::uint64_t programs = 0;      ///< slot programmings started
    std::uint64_t evictions = 0;     ///< ...that displaced a colder tenant
    std::uint64_t replications = 0;  ///< ...that grew a replica count
    std::uint64_t denied_no_fit = 0;
    std::uint64_t denied_cold = 0;   ///< claimant not hot enough to evict
    std::uint64_t failed = 0;        ///< programmings completing non-kOk
    std::uint64_t quarantined = 0;   ///< slots taken out of rotation
  };

  explicit SlotScheduler(FpgaDevice& device)
      : SlotScheduler(device, Options()) {}
  SlotScheduler(FpgaDevice& device, Options opts);

  /// Add `kernel` to the catalog (idempotent by name).  Only catalogued
  /// kernels participate in demand tracking and placement.
  void register_kernel(const HwKernelConfig& kernel);
  [[nodiscard]] bool knows(std::string_view kernel) const;

  /// Record one unit of demand (a placement request naming `kernel`).
  void note_demand(std::string_view kernel);

  /// Decision pass for `kernel`: start at most one slot programming --
  /// replicate it if resident and hottest, place it in an empty slot,
  /// or evict the coldest tenant if the demand margin justifies it.
  /// Returns true when a programming was started.  No-op while the
  /// reconfiguration port is busy (one in-flight decision at a time).
  bool provision(std::string_view kernel);

  /// Current demand score (EWMA + in-window hits); tests/diagnostics.
  [[nodiscard]] double demand(std::string_view kernel) const;

  /// Whether `slot` has been quarantined (permanent within a run).
  [[nodiscard]] bool quarantined(std::uint32_t slot) const {
    return slot < slot_health_.size() &&
           slot_health_[slot].quarantined;
  }
  [[nodiscard]] std::uint32_t quarantined_slots() const;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Options& options() const { return opts_; }

  /// Link the stats counters into a metrics registry under `prefix`.
  void register_metrics(obs::Registry& registry,
                        const std::string& prefix) const;

  /// Emit "fpga.slot_program" spans (begin at reconfigure_slot, end at
  /// its typed completion) on `lane`.  The scheduler has no Simulation
  /// reference of its own, so the caller supplies the clock.  Null
  /// detaches.
  void set_tracer(obs::Tracer* tracer, std::uint32_t lane,
                  sim::Simulation* clock) {
    tracer_ = tracer;
    trace_lane_ = lane;
    trace_clock_ = clock;
  }

 private:
  struct Tenant {
    HwKernelConfig config;
    double ewma = 0.0;
    std::uint64_t hits = 0;  ///< demand notes in the current window
  };

  [[nodiscard]] std::size_t find(std::string_view kernel) const;
  [[nodiscard]] double score(const Tenant& t) const {
    return t.ewma + static_cast<double>(t.hits);
  }
  /// CUs of `kernel` that fit one slot, capped at max_replicas.
  [[nodiscard]] std::uint32_t fit_cap(const HwKernelConfig& k) const;
  void program(std::uint32_t slot, const Tenant& tenant,
               std::uint32_t replicas);
  /// Size the per-slot health table to the device's slot count.
  void ensure_slot_health();
  void record_result(std::uint32_t slot, ReconfigureResult r);

  /// Per-slot gray-failure bookkeeping.
  struct SlotHealth {
    std::uint32_t consecutive_failures = 0;
    bool quarantined = false;
  };

  FpgaDevice& device_;
  Options opts_;
  std::vector<Tenant> tenants_;  ///< registration order == tie-break order
  std::uint32_t since_fold_ = 0;
  Stats stats_;
  std::vector<SlotHealth> slot_health_;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t trace_lane_ = 0;
  sim::Simulation* trace_clock_ = nullptr;
};

}  // namespace xartrek::fpga
