#include "fpga/device.hpp"

#include <utility>

namespace xartrek::fpga {

Duration kernel_latency(const HwKernelConfig& k, std::uint64_t items) {
  XAR_EXPECTS(k.clock_mhz > 0.0);
  const double cycles = static_cast<double>(k.fixed_cycles) +
                        k.cycles_per_item * static_cast<double>(items);
  // cycles / (MHz * 1e3 cycles-per-ms-per-MHz)
  return Duration::ms(cycles / (k.clock_mhz * 1e3));
}

bool XclbinImage::contains_kernel(const std::string& name) const {
  for (const auto& k : kernels) {
    if (k.name == name) return true;
  }
  return false;
}

FpgaResources XclbinImage::total_kernel_resources() const {
  FpgaResources sum;
  for (const auto& k : kernels) {
    XAR_EXPECTS(k.compute_units >= 1);
    for (int cu = 0; cu < k.compute_units; ++cu) sum += k.resources;
  }
  return sum;
}

FpgaSpec alveo_u50_spec() {
  return FpgaSpec{"Xilinx Alveo U50", alveo_u50_total(), alveo_u50_shell(),
                  Duration::ms(300.0)};
}

FpgaDevice::FpgaDevice(sim::Simulation& sim, hw::Link& pcie, FpgaSpec spec,
                       Logger log)
    : sim_(sim), pcie_(pcie), spec_(std::move(spec)), log_(std::move(log)) {}

void FpgaDevice::notify_done(ReconfigureCallback done, bool success) {
  if (notify_.connected()) {
    // The requester (the scheduler) lives on another shard: the
    // completion crosses through its mailbox, paying the channel
    // latency instead of returning inline.
    notify_.deliver([done = std::move(done), success]() mutable {
      done(success);
    });
    return;
  }
  done(success);
}

void FpgaDevice::reconfigure(const XclbinImage& image,
                             ReconfigureCallback on_done) {
  XAR_EXPECTS(on_done != nullptr);
  XAR_EXPECTS(
      FpgaResources::fits_within(image.total_kernel_resources(),
                                 spec_.usable()));
  if (offline_) {
    // Device lost: the request completes (the driver returns an error
    // the caller treats as "not resident") without loading anything.
    log_.warn("fpga: reconfiguration of ", image.id,
              " dropped -- device offline");
    sim_.schedule_in(Duration::zero(),
                     [this, done = std::move(on_done)]() mutable {
                       notify_done(std::move(done), /*success=*/false);
                     });
    return;
  }
  reconfig_queue_.emplace_back(image, std::move(on_done));
  if (!reconfig_active_) start_reconfigure();
}

void FpgaDevice::set_offline(bool offline) {
  offline_ = offline;
  ++residency_version_;
  if (offline) {
    ++offline_events_;
    kernels_.clear();
    loaded_.reset();
    // Drop queued downloads; their completions fire as failures.
    for (auto& [image, cb] : reconfig_queue_) {
      sim_.schedule_in(Duration::zero(),
                       [this, done = std::move(cb)]() mutable {
                         notify_done(std::move(done), /*success=*/false);
                       });
    }
    reconfig_queue_.clear();
    log_.warn("fpga: device taken offline");
  } else {
    log_.info("fpga: device back online (no image loaded)");
  }
}

void FpgaDevice::start_reconfigure() {
  XAR_ASSERT(!reconfig_active_);
  if (reconfig_queue_.empty()) return;
  reconfig_active_ = true;
  auto [image, cb] = std::move(reconfig_queue_.front());
  reconfig_queue_.pop_front();

  const std::uint64_t offline_mark = offline_events_;
  ++residency_version_;  // the old configuration dies right below
  // The old configuration dies the moment programming starts.  In-flight
  // CU work is considered already-drained: the scheduler never initiates
  // a reconfiguration while routing work to the device (Algorithm 2 only
  // reconfigures on the "No HW Kernel" paths).
  kernels_.clear();
  loaded_.reset();

  log_.debug("fpga: downloading xclbin ", image.id, " (", image.size_bytes,
             " bytes)");
  pcie_.transfer(
      image.size_bytes, [this, offline_mark, image = std::move(image),
                         done = std::move(cb)]() mutable {
        sim_.schedule_in(
            spec_.programming_time,
            [this, offline_mark, image = std::move(image),
             done = std::move(done)]() mutable {
              if (offline_ || offline_events_ != offline_mark) {
                // Card died -- or blipped -- mid-programming: the
                // bitstream write is torn, nothing becomes resident.
                reconfig_active_ = false;
                ++residency_version_;
                if (!offline_) start_reconfigure();
                notify_done(std::move(done), /*success=*/false);
                return;
              }
              if (fail_armed_) {
                // Injected programming failure (corrupted bitstream /
                // ICAP error): the card survives but nothing becomes
                // resident.  One-shot -- the next download works.
                fail_armed_ = false;
                reconfig_active_ = false;
                ++residency_version_;
                log_.warn("fpga: programming of ", image.id,
                          " failed (injected)");
                start_reconfigure();
                notify_done(std::move(done), /*success=*/false);
                return;
              }
              for (const auto& k : image.kernels) {
                LoadedKernel loaded;
                loaded.config = k;
                for (int cu = 0; cu < k.compute_units; ++cu) {
                  loaded.cus.push_back(std::make_unique<sim::FifoStation>(
                      sim_, image.id + "/" + k.name + "." +
                                std::to_string(cu)));
                }
                kernels_.emplace(k.name, std::move(loaded));
              }
              loaded_ = std::move(image);
              ++reconfigs_;
              reconfig_active_ = false;
              ++residency_version_;
              log_.info("fpga: xclbin ", loaded_->id, " live with ",
                        kernels_.size(), " kernel(s)");
              // Serve any queued request before signalling completion so
              // `reconfiguring()` stays true continuously when requests
              // are stacked.
              start_reconfigure();
              notify_done(std::move(done), /*success=*/true);
            });
      });
}

bool FpgaDevice::has_kernel(const std::string& name) const {
  return !reconfig_active_ && kernels_.contains(name);
}

std::vector<std::string> FpgaDevice::available_kernels() const {
  std::vector<std::string> names;
  if (reconfig_active_) return names;
  names.reserve(kernels_.size());
  for (const auto& [name, k] : kernels_) names.push_back(name);
  return names;
}

sim::FifoStation& FpgaDevice::LoadedKernel::pick_cu() const {
  XAR_ASSERT(!cus.empty());
  sim::FifoStation* best = cus.front().get();
  auto backlog = [](const sim::FifoStation& cu) {
    return cu.queue_length() + (cu.busy() ? 1 : 0);
  };
  for (const auto& cu : cus) {
    if (backlog(*cu) < backlog(*best)) best = cu.get();
  }
  return *best;
}

void FpgaDevice::execute(const std::string& name, std::uint64_t items,
                         Callback on_done) {
  XAR_EXPECTS(on_done != nullptr);
  auto it = kernels_.find(name);
  XAR_EXPECTS(it != kernels_.end() && !reconfig_active_);
  const Duration service = kernel_latency(it->second.config, items);
  it->second.pick_cu().enqueue(service,
                               [this, cb = std::move(on_done)]() mutable {
                                 ++retired_invocations_;
                                 cb();
                               });
}

std::optional<std::string> FpgaDevice::loaded_image() const {
  if (!loaded_) return std::nullopt;
  return loaded_->id;
}

std::uint64_t FpgaDevice::kernel_invocations() const {
  return retired_invocations_;
}

}  // namespace xartrek::fpga
