#include "fpga/device.hpp"

#include <algorithm>
#include <utility>

namespace xartrek::fpga {

Duration kernel_latency(const HwKernelConfig& k, std::uint64_t items) {
  XAR_EXPECTS(k.clock_mhz > 0.0);
  const double cycles = static_cast<double>(k.fixed_cycles) +
                        k.cycles_per_item * static_cast<double>(items);
  // cycles / (MHz * 1e3 cycles-per-ms-per-MHz)
  return Duration::ms(cycles / (k.clock_mhz * 1e3));
}

bool XclbinImage::contains_kernel(const std::string& name) const {
  for (const auto& k : kernels) {
    if (k.name == name) return true;
  }
  return false;
}

FpgaResources XclbinImage::total_kernel_resources() const {
  FpgaResources sum;
  for (const auto& k : kernels) {
    XAR_EXPECTS(k.compute_units >= 1);
    for (int cu = 0; cu < k.compute_units; ++cu) sum += k.resources;
  }
  return sum;
}

FpgaSpec alveo_u50_spec() {
  return FpgaSpec{"Xilinx Alveo U50", alveo_u50_total(), alveo_u50_shell(),
                  Duration::ms(300.0)};
}

const char* to_string(ReconfigureResult r) {
  switch (r) {
    case ReconfigureResult::kOk: return "ok";
    case ReconfigureResult::kNoFit: return "no-fit";
    case ReconfigureResult::kOfflineDrop: return "offline-drop";
    case ReconfigureResult::kTornWrite: return "torn-write";
    case ReconfigureResult::kInjectedFailure: return "injected-failure";
  }
  return "unknown";
}

FpgaDevice::FpgaDevice(sim::Simulation& sim, hw::Link& pcie, FpgaSpec spec,
                       Logger log)
    : sim_(sim), pcie_(pcie), spec_(std::move(spec)), log_(std::move(log)) {}

void FpgaDevice::notify_done(ReconfigureCallback done,
                             ReconfigureResult result) {
  if (notify_.connected()) {
    // The requester (the scheduler) lives on another shard: the
    // completion crosses through its mailbox, paying the channel
    // latency instead of returning inline.
    notify_.deliver([done = std::move(done), result]() mutable {
      done(result);
    });
    return;
  }
  done(result);
}

void FpgaDevice::finish_port(ReconfigureCallback done,
                             ReconfigureResult result) {
  reconfig_active_ = false;
  // Serve any queued request before signalling completion so
  // `reconfiguring()` stays true continuously when requests are
  // stacked.  An offline card keeps its queue parked.
  if (!offline_) start_reconfigure();
  notify_done(std::move(done), result);
}

void FpgaDevice::retire_cus(
    std::vector<std::unique_ptr<sim::FifoStation>>& cus) {
  for (auto& cu : cus) {
    if (cu->busy() || cu->queue_length() > 0) {
      draining_cus_.push_back(std::move(cu));
    }
  }
  cus.clear();
  // Anything displaced earlier that has since drained is safe now: an
  // idle FifoStation has no scheduled event pointing at it.
  std::erase_if(draining_cus_, [](const auto& cu) { return !cu->busy(); });
}

void FpgaDevice::enable_slots(SlotConfig cfg) {
  XAR_EXPECTS(cfg.slots >= 1);
  XAR_EXPECTS(!slot_mode());
  XAR_EXPECTS(!reconfiguring() && !offline_);
  XAR_EXPECTS(kernels_.empty() && !loaded_.has_value());
  slot_capacity_ = spec_.usable() / cfg.slots;
  slots_.resize(cfg.slots);
  slot_cfg_ = cfg;
  bump_epoch();
  log_.info("fpga: slot mode enabled -- ", cfg.slots,
            " PR slots of ", slot_capacity_.luts, " LUTs each");
}

const FpgaResources& FpgaDevice::slot_capacity() const {
  XAR_EXPECTS(slot_mode());
  return slot_capacity_;
}

std::optional<std::string> FpgaDevice::slot_kernel(std::uint32_t slot) const {
  XAR_EXPECTS(slot_mode() && slot < slots_.size());
  const Slot& s = slots_[slot];
  if (s.state != Slot::State::kLoaded) return std::nullopt;
  return s.config.name;
}

void FpgaDevice::reconfigure(const XclbinImage& image,
                             ReconfigureCallback on_done) {
  XAR_EXPECTS(on_done != nullptr);
  // Whole-image downloads and slot virtualization don't mix: a full
  // bitstream would overwrite every slot.
  XAR_EXPECTS(!slot_mode());
  XAR_EXPECTS(
      FpgaResources::fits_within(image.total_kernel_resources(),
                                 spec_.usable()));
  if (offline_) {
    // Device lost: the request completes (the driver returns an error
    // the caller treats as "not resident") without loading anything.
    log_.warn("fpga: reconfiguration of ", image.id,
              " dropped -- device offline");
    sim_.schedule_in(Duration::zero(),
                     [this, done = std::move(on_done)]() mutable {
                       notify_done(std::move(done),
                                   ReconfigureResult::kOfflineDrop);
                     });
    return;
  }
  PendingReconfig req;
  req.image = image;
  req.on_done = std::move(on_done);
  reconfig_queue_.push_back(std::move(req));
  if (!reconfig_active_) start_reconfigure();
}

void FpgaDevice::reconfigure_slot(std::uint32_t slot,
                                  const HwKernelConfig& kernel,
                                  std::uint32_t replicas,
                                  ReconfigureCallback on_done) {
  XAR_EXPECTS(on_done != nullptr);
  XAR_EXPECTS(slot_mode());
  XAR_EXPECTS(slot < slots_.size());
  XAR_EXPECTS(replicas >= 1);
  FpgaResources need;
  for (std::uint32_t cu = 0; cu < replicas; ++cu) need += kernel.resources;
  if (!FpgaResources::fits_within(need, slot_capacity_)) {
    // Area refusal is a completion, not a contract violation: the slot
    // scheduler probes fits speculatively and consumes the result.
    log_.warn("fpga: ", kernel.name, " x", replicas,
              " does not fit slot ", slot, " -- refused");
    sim_.schedule_in(Duration::zero(),
                     [this, done = std::move(on_done)]() mutable {
                       notify_done(std::move(done),
                                   ReconfigureResult::kNoFit);
                     });
    return;
  }
  if (offline_) {
    log_.warn("fpga: slot programming of ", kernel.name,
              " dropped -- device offline");
    sim_.schedule_in(Duration::zero(),
                     [this, done = std::move(on_done)]() mutable {
                       notify_done(std::move(done),
                                   ReconfigureResult::kOfflineDrop);
                     });
    return;
  }
  PendingReconfig req;
  req.slot = slot;
  req.kernel = kernel;
  req.replicas = replicas;
  req.on_done = std::move(on_done);
  reconfig_queue_.push_back(std::move(req));
  if (!reconfig_active_) start_reconfigure();
}

void FpgaDevice::set_offline(bool offline) {
  offline_ = offline;
  bump_epoch();
  if (offline) {
    ++offline_events_;
    for (auto& [name, k] : kernels_) retire_cus(k.cus);
    kernels_.clear();
    loaded_.reset();
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      if (s.state == Slot::State::kEmpty && s.cus.empty()) continue;
      s.state = Slot::State::kEmpty;
      retire_cus(s.cus);
      ++s.version;
    }
    // Drop queued downloads; their completions fire as offline drops.
    for (auto& req : reconfig_queue_) {
      sim_.schedule_in(Duration::zero(),
                       [this, done = std::move(req.on_done)]() mutable {
                         notify_done(std::move(done),
                                     ReconfigureResult::kOfflineDrop);
                       });
    }
    reconfig_queue_.clear();
    log_.warn("fpga: device taken offline");
  } else {
    log_.info("fpga: device back online (nothing loaded)");
  }
}

void FpgaDevice::set_port_flaky(double fail_probability, Rng rng) {
  XAR_EXPECTS(fail_probability >= 0.0 && fail_probability <= 1.0);
  flaky_ = true;
  flaky_probability_ = fail_probability;
  flaky_rng_ = rng;
}

bool FpgaDevice::draw_injected_failure() {
  if (fail_armed_) {
    fail_armed_ = false;
    return true;
  }
  return flaky_ && flaky_rng_.bernoulli(flaky_probability_);
}

void FpgaDevice::start_reconfigure() {
  XAR_ASSERT(!reconfig_active_);
  if (reconfig_queue_.empty()) return;
  reconfig_active_ = true;
  PendingReconfig req = std::move(reconfig_queue_.front());
  reconfig_queue_.pop_front();
  if (req.slot == kNoSlot) {
    start_whole_image(std::move(req));
  } else {
    start_slot(std::move(req));
  }
}

void FpgaDevice::start_whole_image(PendingReconfig req) {
  const std::uint64_t offline_mark = offline_events_;
  bump_epoch();  // the old configuration dies right below
  // The old configuration stops being callable the moment programming
  // starts; CUs with work still in flight drain in the graveyard (their
  // completions fire with the old service times).
  for (auto& [name, k] : kernels_) retire_cus(k.cus);
  kernels_.clear();
  loaded_.reset();

  log_.debug("fpga: downloading xclbin ", req.image.id, " (",
             req.image.size_bytes, " bytes)");
  pcie_.transfer(
      req.image.size_bytes,
      [this, offline_mark, req = std::move(req)]() mutable {
        sim_.schedule_in(
            spec_.programming_time,
            [this, offline_mark, req = std::move(req)]() mutable {
              if (offline_ || offline_events_ != offline_mark) {
                // Card died -- or blipped -- mid-programming: the
                // bitstream write is torn, nothing becomes resident.
                bump_epoch();
                finish_port(std::move(req.on_done),
                            ReconfigureResult::kTornWrite);
                return;
              }
              if (draw_injected_failure()) {
                // Injected programming failure (corrupted bitstream /
                // ICAP error): the card survives but nothing becomes
                // resident.  One-shot arm, or a flaky-port draw.
                bump_epoch();
                log_.warn("fpga: programming of ", req.image.id,
                          " failed (injected)");
                finish_port(std::move(req.on_done),
                            ReconfigureResult::kInjectedFailure);
                return;
              }
              for (const auto& k : req.image.kernels) {
                LoadedKernel loaded;
                loaded.config = k;
                for (int cu = 0; cu < k.compute_units; ++cu) {
                  loaded.cus.push_back(std::make_unique<sim::FifoStation>(
                      sim_, req.image.id + "/" + k.name + "." +
                                std::to_string(cu)));
                }
                kernels_.emplace(k.name, std::move(loaded));
              }
              loaded_ = std::move(req.image);
              ++reconfigs_;
              bump_epoch();
              log_.info("fpga: xclbin ", loaded_->id, " live with ",
                        kernels_.size(), " kernel(s)");
              finish_port(std::move(req.on_done), ReconfigureResult::kOk);
            });
      });
}

void FpgaDevice::start_slot(PendingReconfig req) {
  const std::uint64_t offline_mark = offline_events_;
  Slot& target = slots_[req.slot];
  // Only this slot goes dark while its partial bitstream programs; the
  // other slots keep serving -- the point of the virtualization.
  target.state = Slot::State::kProgramming;
  retire_cus(target.cus);
  ++target.version;
  bump_epoch();

  log_.debug("fpga: programming slot ", req.slot, " with ", req.kernel.name,
             " x", req.replicas);
  pcie_.transfer(
      slot_cfg_->slot_bitstream_bytes,
      [this, offline_mark, req = std::move(req)]() mutable {
        sim_.schedule_in(
            slot_cfg_->slot_program_time,
            [this, offline_mark, req = std::move(req)]() mutable {
              Slot& slot = slots_[req.slot];
              if (offline_ || offline_events_ != offline_mark) {
                // Torn write confined to this slot: set_offline already
                // emptied the table; record the tear and move on.
                slot.state = Slot::State::kEmpty;
                retire_cus(slot.cus);
                ++slot.version;
                bump_epoch();
                finish_port(std::move(req.on_done),
                            ReconfigureResult::kTornWrite);
                return;
              }
              if (draw_injected_failure()) {
                slot.state = Slot::State::kEmpty;
                ++slot.version;
                bump_epoch();
                log_.warn("fpga: slot ", req.slot, " programming of ",
                          req.kernel.name, " failed (injected)");
                finish_port(std::move(req.on_done),
                            ReconfigureResult::kInjectedFailure);
                return;
              }
              slot.state = Slot::State::kLoaded;
              slot.config = req.kernel;
              for (std::uint32_t cu = 0; cu < req.replicas; ++cu) {
                slot.cus.push_back(std::make_unique<sim::FifoStation>(
                    sim_, "slot" + std::to_string(req.slot) + "/" +
                              req.kernel.name + "." + std::to_string(cu)));
              }
              ++slot.version;
              ++reconfigs_;
              bump_epoch();
              log_.info("fpga: slot ", req.slot, " live with ",
                        req.kernel.name, " x", req.replicas);
              finish_port(std::move(req.on_done), ReconfigureResult::kOk);
            });
      });
}

bool FpgaDevice::has_kernel(const std::string& name) const {
  if (slot_mode()) {
    for (const Slot& s : slots_) {
      if (s.state == Slot::State::kLoaded && s.config.name == name)
        return true;
    }
    return false;
  }
  return !reconfig_active_ && kernels_.contains(name);
}

std::vector<std::string> FpgaDevice::available_kernels() const {
  std::vector<std::string> names;
  if (slot_mode()) {
    for (const Slot& s : slots_) {
      if (s.state == Slot::State::kLoaded) names.push_back(s.config.name);
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
  }
  if (reconfig_active_) return names;
  names.reserve(kernels_.size());
  for (const auto& [name, k] : kernels_) names.push_back(name);
  return names;
}

ResidencyView FpgaDevice::residency(std::string_view kernel) const {
  ResidencyView view;
  view.version = residency_epoch_;
  if (slot_mode()) {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      const Slot& s = slots_[i];
      if (s.state != Slot::State::kLoaded || s.config.name != kernel)
        continue;
      if (view.slot == kNoSlot) {
        view.slot = i;
        view.version = s.version;
      }
      view.cus += static_cast<std::uint32_t>(s.cus.size());
    }
    return view;
  }
  if (reconfig_active_) return view;
  auto it = kernels_.find(std::string(kernel));
  if (it == kernels_.end()) return view;
  view.cus = static_cast<std::uint32_t>(it->second.cus.size());
  return view;
}

bool FpgaDevice::residency_current(const ResidencyView& view) const {
  if (slot_mode() && view.slot != kNoSlot) {
    return view.slot < slots_.size() &&
           slots_[view.slot].version == view.version;
  }
  return view.version == residency_epoch_;
}

sim::FifoStation& FpgaDevice::LoadedKernel::pick_cu() const {
  XAR_ASSERT(!cus.empty());
  sim::FifoStation* best = cus.front().get();
  auto backlog = [](const sim::FifoStation& cu) {
    return cu.queue_length() + (cu.busy() ? 1 : 0);
  };
  for (const auto& cu : cus) {
    if (backlog(*cu) < backlog(*best)) best = cu.get();
  }
  return *best;
}

sim::FifoStation* FpgaDevice::pick_slot_cu(const std::string& name,
                                           const HwKernelConfig** cfg) {
  sim::FifoStation* best = nullptr;
  auto backlog = [](const sim::FifoStation& cu) {
    return cu.queue_length() + (cu.busy() ? 1 : 0);
  };
  for (Slot& s : slots_) {
    if (s.state != Slot::State::kLoaded || s.config.name != name) continue;
    for (const auto& cu : s.cus) {
      if (best == nullptr || backlog(*cu) < backlog(*best)) {
        best = cu.get();
        *cfg = &s.config;
      }
    }
  }
  return best;
}

void FpgaDevice::execute(const std::string& name, std::uint64_t items,
                         Callback on_done) {
  XAR_EXPECTS(on_done != nullptr);
  if (slot_mode()) {
    const HwKernelConfig* cfg = nullptr;
    sim::FifoStation* cu = pick_slot_cu(name, &cfg);
    XAR_EXPECTS(cu != nullptr);
    const Duration service = kernel_latency(*cfg, items);
    cu->enqueue(service, [this, cb = std::move(on_done)]() mutable {
      ++retired_invocations_;
      cb();
    });
    return;
  }
  auto it = kernels_.find(name);
  XAR_EXPECTS(it != kernels_.end() && !reconfig_active_);
  const Duration service = kernel_latency(it->second.config, items);
  it->second.pick_cu().enqueue(service,
                               [this, cb = std::move(on_done)]() mutable {
                                 ++retired_invocations_;
                                 cb();
                               });
}

std::optional<std::string> FpgaDevice::loaded_image() const {
  if (!loaded_) return std::nullopt;
  return loaded_->id;
}

std::uint64_t FpgaDevice::kernel_invocations() const {
  return retired_invocations_;
}

}  // namespace xartrek::fpga
