// FPGA accelerator-card device model.
//
// Models an Alveo-class PCIe card in one of two modes:
//
//  * Whole-image mode (default): the programmable region holds the
//    kernels of exactly one XCLBIN at a time and a reconfiguration
//    swaps the entire fabric (download over PCIe + full programming
//    time).
//
//  * Slot mode (`enable_slots`): the usable region is carved into N
//    equal partial-reconfiguration slots.  Each slot hosts one kernel
//    with a replication count (CUs per slot), programs independently at
//    a per-slot latency much cheaper than a full bitstream download,
//    and keeps serving while *other* slots reprogram.  This is the
//    SYNERGY-style virtualization the ROADMAP calls for: several
//    tenants resident at once instead of one hot tenant monopolizing
//    the device.
//
// The device is deliberately dumb: *when* to reconfigure and *whether* a
// kernel is worth calling are the Xar-Trek scheduler's decisions (the
// slot eviction/replication policy lives in fpga::SlotScheduler).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "fpga/resources.hpp"
#include "hw/link.hpp"
#include "sim/callback.hpp"
#include "sim/fifo_station.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"
#include "sim/topology.hpp"

namespace xartrek::fpga {

/// Latency/footprint description of one hardware kernel, as produced by
/// the HLS toolchain model (one per XO file).
struct HwKernelConfig {
  std::string name;          ///< e.g. "KNL_HW_FD320"
  FpgaResources resources;   ///< post-implementation footprint per CU
  double clock_mhz = 300.0;  ///< achieved kernel clock
  std::uint64_t fixed_cycles = 0;  ///< pipeline fill + control overhead
  double cycles_per_item = 0.0;    ///< steady-state cycles per work item
  /// Replicated compute units (Vitis `nk` option): invocations of the
  /// same kernel run concurrently up to this count, at `compute_units`
  /// times the area.
  int compute_units = 1;
};

/// Execution latency of a kernel invocation over `items` work items.
[[nodiscard]] Duration kernel_latency(const HwKernelConfig& k,
                                      std::uint64_t items);

/// A fully built FPGA configuration image (the output of the XCLBIN
/// generation step): the set of kernels that become available when the
/// image is downloaded, plus its on-disk size.
struct XclbinImage {
  std::string id;
  std::vector<HwKernelConfig> kernels;
  std::uint64_t size_bytes = 0;

  [[nodiscard]] bool contains_kernel(const std::string& name) const;
  [[nodiscard]] FpgaResources total_kernel_resources() const;
};

/// Static description of the card.
struct FpgaSpec {
  std::string model;
  FpgaResources total;
  FpgaResources shell;
  /// Fabric programming time after the bitstream lands on the card
  /// (ICAP throughput bound; hundreds of ms for datacenter parts).
  Duration programming_time = Duration::ms(300.0);

  /// Region available to kernels.
  [[nodiscard]] FpgaResources usable() const { return total - shell; }
};

/// The paper's Xilinx Alveo U50.
[[nodiscard]] FpgaSpec alveo_u50_spec();

/// Outcome of a reconfiguration request.  The old bool collapsed four
/// distinct failure paths; callers (retry loops, fault-injection tests,
/// the slot scheduler's accounting) need to tell them apart.
enum class ReconfigureResult : std::uint8_t {
  kOk,               ///< kernels became resident
  kNoFit,            ///< request exceeds the slot's area budget
  kOfflineDrop,      ///< dropped before programming: device offline
  kTornWrite,        ///< device died/blipped mid-programming
  kInjectedFailure,  ///< armed one-shot failure (corrupted bitstream)
};

/// True iff the kernels actually became resident.
[[nodiscard]] constexpr bool succeeded(ReconfigureResult r) {
  return r == ReconfigureResult::kOk;
}

[[nodiscard]] const char* to_string(ReconfigureResult r);

/// Partial-reconfiguration slot geometry (slot mode).
struct SlotConfig {
  std::uint32_t slots = 4;  ///< PR slots carved from usable()
  /// Fabric programming time for one slot's partial bitstream.  Scales
  /// with region size, so roughly programming_time / slots for an
  /// equal carve -- an order of magnitude under a full download.
  Duration slot_program_time = Duration::ms(40.0);
  /// Partial bitstream size moved over PCIe per slot programming.
  std::uint64_t slot_bitstream_bytes = 4ull << 20;
};

/// Where a slot-addressable reconfiguration may also target the whole
/// device (whole-image mode requests).
inline constexpr std::uint32_t kNoSlot = ~0u;

/// Snapshot of one kernel's residency, the unit the scheduler's
/// per-batch memo caches.  `version` is the hosting slot's programming
/// version (slot mode) or the device residency epoch (whole-image mode
/// and non-resident answers); `FpgaDevice::residency_current` says
/// whether the snapshot still holds, replacing the old scheme of
/// comparing a device-wide `residency_version()` by hand.
struct ResidencyView {
  std::uint32_t slot = kNoSlot;  ///< hosting slot, kNoSlot if none/whole
  std::uint32_t cus = 0;         ///< callable compute units right now
  std::uint64_t version = 0;

  [[nodiscard]] constexpr bool resident() const { return cus != 0; }
};

/// The device model.  Owns the loaded image (or slot table) and the
/// per-kernel compute units; reconfiguration requests are serialized
/// FIFO through the single reconfiguration port.
class FpgaDevice {
 public:
  using Callback = sim::UniqueCallback;
  /// Reconfiguration completion.  A request dropped because the card is
  /// offline, killed mid-programming, failed by injection, or refused
  /// for area still completes -- with the matching non-kOk result -- so
  /// callers can distinguish the failure paths.
  using ReconfigureCallback = sim::UniqueFunction<void(ReconfigureResult)>;

  FpgaDevice(sim::Simulation& sim, hw::Link& pcie, FpgaSpec spec,
             Logger log = {});
  FpgaDevice(const FpgaDevice&) = delete;
  FpgaDevice& operator=(const FpgaDevice&) = delete;

  // ---- whole-image mode -------------------------------------------------

  /// Download and program `image`.  During reconfiguration the previous
  /// kernels are torn down immediately (the scheduler must not route work
  /// here until `on_done`).  Concurrent requests queue FIFO.  Requires
  /// the image's kernels to fit the usable region, and whole-image mode.
  void reconfigure(const XclbinImage& image, ReconfigureCallback on_done);

  /// The currently loaded image id, if any (always nullopt in slot mode).
  [[nodiscard]] std::optional<std::string> loaded_image() const;

  // ---- slot mode --------------------------------------------------------

  /// Switch to slot mode: carve usable() into cfg.slots equal PR slots.
  /// One-way, and requires a quiescent device (nothing loaded, nothing
  /// queued, online).
  void enable_slots(SlotConfig cfg);

  [[nodiscard]] bool slot_mode() const { return slot_cfg_.has_value(); }
  [[nodiscard]] std::uint32_t slot_count() const {
    return slot_mode() ? slot_cfg_->slots : 0;
  }
  /// Area budget of one slot (slot mode only).
  [[nodiscard]] const FpgaResources& slot_capacity() const;

  /// Program `slot` with `replicas` CUs of `kernel`, tearing down
  /// whatever the slot held.  Serialized FIFO with other programmings
  /// on the reconfiguration port, but only this slot goes dark; the
  /// others keep serving.  Completes kNoFit when replicas x footprint
  /// exceeds the slot capacity.  Requires slot mode.
  void reconfigure_slot(std::uint32_t slot, const HwKernelConfig& kernel,
                        std::uint32_t replicas, ReconfigureCallback on_done);

  /// Kernel hosted by `slot` right now, if any (diagnostics / policy).
  [[nodiscard]] std::optional<std::string> slot_kernel(
      std::uint32_t slot) const;

  // ---- common -----------------------------------------------------------

  /// True while a download/programming is in progress or queued (in slot
  /// mode: the reconfiguration port is busy, not the whole device).
  [[nodiscard]] bool reconfiguring() const {
    return reconfig_active_ || !reconfig_queue_.empty();
  }

  /// True when `name` is loaded and callable right now.  In slot mode a
  /// kernel is callable while *other* slots reprogram.
  [[nodiscard]] bool has_kernel(const std::string& name) const;

  /// Names of callable kernels (the scheduler's "Query Available HW
  /// Kernels", Algorithm 2 line 1).
  [[nodiscard]] std::vector<std::string> available_kernels() const;

  /// Slot-aware residency snapshot for `kernel`; agrees with
  /// has_kernel() on `resident()`.  Cache it and revalidate with
  /// residency_current() -- the scheduler's batched decision pass keys
  /// its per-batch memo on this.
  [[nodiscard]] ResidencyView residency(std::string_view kernel) const;

  /// Whether a cached view still describes the device: in slot mode a
  /// resident view stays valid until *its* slot reprograms (other slots
  /// churning doesn't invalidate it); otherwise it is compared against
  /// the device residency epoch.
  [[nodiscard]] bool residency_current(const ResidencyView& view) const;

  /// Run kernel `name` over `items` work items; routed to the
  /// least-backlogged CU hosting it.  Requires has_kernel(name).
  void execute(const std::string& name, std::uint64_t items,
               Callback on_done);

  /// Failure injection: take the card offline (XRT device lost).  All
  /// kernels -- every slot in slot mode -- are torn down and every
  /// subsequent reconfiguration request completes with kOfflineDrop, so
  /// `has_kernel` stays false until the card is brought back.  The
  /// Xar-Trek scheduler degrades to the CPU-only branches of Algorithm
  /// 2; the traditional always-FPGA flow stalls -- exactly the contrast
  /// the tests assert.
  void set_offline(bool offline);
  [[nodiscard]] bool offline() const { return offline_; }

  /// Failure injection: arm a one-shot reconfiguration failure.  The
  /// next programming to finish installs nothing and completes with
  /// kInjectedFailure (a corrupted bitstream / ICAP error), after which
  /// the card keeps working normally.
  void inject_reconfigure_failure() { fail_armed_ = true; }
  [[nodiscard]] bool reconfigure_failure_armed() const {
    return fail_armed_;
  }

  /// Gray-failure injection (kPortFlaky): while armed, each programming
  /// completion independently fails with probability `fail_probability`
  /// (kInjectedFailure -- bad ICAP writes), the card surviving each
  /// time.  Draws come from `rng` (a split stream of the chaos seed) on
  /// this device's own shard in completion order, so serial and
  /// parallel runs fail the identical programmings and an unarmed
  /// device draws nothing.
  void set_port_flaky(double fail_probability, Rng rng);
  void clear_port_flaky() { flaky_ = false; }
  [[nodiscard]] bool port_flaky() const { return flaky_; }

  /// Topology registration: the device is node `self`, the scheduler
  /// that consumes reconfiguration completions is node `scheduler`.
  /// When the partitioner put them on different shards, `reconfigure`'s
  /// `on_done` is delivered through the registered edge's channel;
  /// otherwise completions keep firing on this device's shard.
  void register_notify(sim::PartitionedEngine& eng, sim::NodeId self,
                       sim::NodeId scheduler) {
    notify_ = eng.channel_between(self, scheduler);
  }

  /// Completed reconfigurations (diagnostics / tests).  Slot
  /// programmings count individually.
  [[nodiscard]] std::uint64_t reconfigurations() const { return reconfigs_; }

  /// Bumped on every event that can change `has_kernel` answers
  /// (programming start/completion, offline transitions).  Prefer
  /// residency()/residency_current() -- in slot mode they avoid
  /// invalidating cached answers for slots that didn't change.
  [[nodiscard]] std::uint64_t residency_epoch() const {
    return residency_epoch_;
  }

  /// Completed kernel invocations across all CUs.
  [[nodiscard]] std::uint64_t kernel_invocations() const;

  [[nodiscard]] const FpgaSpec& spec() const { return spec_; }

 private:
  struct LoadedKernel {
    HwKernelConfig config;
    std::vector<std::unique_ptr<sim::FifoStation>> cus;

    /// The least-backlogged compute unit (ties -> lowest index).
    [[nodiscard]] sim::FifoStation& pick_cu() const;
  };

  /// One partial-reconfiguration slot.
  struct Slot {
    enum class State : std::uint8_t { kEmpty, kProgramming, kLoaded };
    State state = State::kEmpty;
    HwKernelConfig config;  ///< valid when kLoaded
    std::vector<std::unique_ptr<sim::FifoStation>> cus;
    /// Bumped whenever this slot's contents change (programming start,
    /// completion, teardown).  ResidencyView caching keys on it.
    std::uint64_t version = 0;
  };

  /// A queued programming: whole-image when slot == kNoSlot.
  struct PendingReconfig {
    std::uint32_t slot = kNoSlot;
    XclbinImage image;       ///< whole-image payload
    HwKernelConfig kernel;   ///< slot payload
    std::uint32_t replicas = 0;
    ReconfigureCallback on_done;
  };

  void start_reconfigure();
  void start_whole_image(PendingReconfig req);
  void start_slot(PendingReconfig req);
  void finish_port(ReconfigureCallback done, ReconfigureResult result);
  /// Fire `done(result)` locally, or through the notify channel when
  /// one is set.
  void notify_done(ReconfigureCallback done, ReconfigureResult result);
  /// Least-backlogged CU hosting `name` across slots; null if absent.
  [[nodiscard]] sim::FifoStation* pick_slot_cu(const std::string& name,
                                               const HwKernelConfig** cfg);
  void bump_epoch() { ++residency_epoch_; }
  /// One-shot arm plus flaky-port draw: decides whether the programming
  /// completing right now fails with kInjectedFailure.
  [[nodiscard]] bool draw_injected_failure();
  /// Displace `cus`: stations with work in flight drain in the
  /// graveyard (their completions still fire, modeling
  /// quiesce-before-reprogram without blocking the port); idle ones are
  /// destroyed now.  A busy FifoStation has a scheduled event pointing
  /// at it, so destroying one in place would be a use-after-free.
  void retire_cus(std::vector<std::unique_ptr<sim::FifoStation>>& cus);

  sim::Simulation& sim_;
  hw::Link& pcie_;
  FpgaSpec spec_;
  Logger log_;
  sim::CrossShardChannel notify_;

  std::optional<XclbinImage> loaded_;
  std::map<std::string, LoadedKernel> kernels_;
  /// Displaced CUs still draining in-flight work (see retire_cus).
  std::vector<std::unique_ptr<sim::FifoStation>> draining_cus_;
  std::uint64_t retired_invocations_ = 0;

  std::optional<SlotConfig> slot_cfg_;
  FpgaResources slot_capacity_;
  std::vector<Slot> slots_;

  bool reconfig_active_ = false;
  bool offline_ = false;
  bool fail_armed_ = false;
  bool flaky_ = false;  ///< windowed probabilistic port failures
  double flaky_probability_ = 0.0;
  Rng flaky_rng_{0};
  /// Offline transitions ever taken.  A programming attempt stamps this
  /// at start and re-checks at completion, so even an offline blip that
  /// heals before programming finishes tears the bitstream write.
  std::uint64_t offline_events_ = 0;
  std::deque<PendingReconfig> reconfig_queue_;
  std::uint64_t reconfigs_ = 0;
  std::uint64_t residency_epoch_ = 0;
};

}  // namespace xartrek::fpga
