// FPGA accelerator-card device model.
//
// Models an Alveo-class PCIe card: a programmable region that holds the
// kernels of exactly one XCLBIN at a time, a reconfiguration port that
// serializes XCLBIN downloads (download over PCIe + fabric programming
// time), and one FIFO compute unit per loaded kernel.
//
// The device is deliberately dumb: *when* to reconfigure and *whether* a
// kernel is worth calling are the Xar-Trek scheduler's decisions.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/time.hpp"
#include "fpga/resources.hpp"
#include "hw/link.hpp"
#include "sim/callback.hpp"
#include "sim/fifo_station.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"
#include "sim/topology.hpp"

namespace xartrek::fpga {

/// Latency/footprint description of one hardware kernel, as produced by
/// the HLS toolchain model (one per XO file).
struct HwKernelConfig {
  std::string name;          ///< e.g. "KNL_HW_FD320"
  FpgaResources resources;   ///< post-implementation footprint per CU
  double clock_mhz = 300.0;  ///< achieved kernel clock
  std::uint64_t fixed_cycles = 0;  ///< pipeline fill + control overhead
  double cycles_per_item = 0.0;    ///< steady-state cycles per work item
  /// Replicated compute units (Vitis `nk` option): invocations of the
  /// same kernel run concurrently up to this count, at `compute_units`
  /// times the area.
  int compute_units = 1;
};

/// Execution latency of a kernel invocation over `items` work items.
[[nodiscard]] Duration kernel_latency(const HwKernelConfig& k,
                                      std::uint64_t items);

/// A fully built FPGA configuration image (the output of the XCLBIN
/// generation step): the set of kernels that become available when the
/// image is downloaded, plus its on-disk size.
struct XclbinImage {
  std::string id;
  std::vector<HwKernelConfig> kernels;
  std::uint64_t size_bytes = 0;

  [[nodiscard]] bool contains_kernel(const std::string& name) const;
  [[nodiscard]] FpgaResources total_kernel_resources() const;
};

/// Static description of the card.
struct FpgaSpec {
  std::string model;
  FpgaResources total;
  FpgaResources shell;
  /// Fabric programming time after the bitstream lands on the card
  /// (ICAP throughput bound; hundreds of ms for datacenter parts).
  Duration programming_time = Duration::ms(300.0);

  /// Region available to kernels.
  [[nodiscard]] FpgaResources usable() const { return total - shell; }
};

/// The paper's Xilinx Alveo U50.
[[nodiscard]] FpgaSpec alveo_u50_spec();

/// The device model.  Owns the loaded image and the per-kernel compute
/// units; reconfiguration requests are serialized FIFO.
class FpgaDevice {
 public:
  using Callback = sim::UniqueCallback;
  /// Reconfiguration completion: `success` is true iff the image's
  /// kernels actually became resident.  A request dropped because the
  /// card is offline, killed mid-programming, or failed by injection
  /// still completes -- with success == false -- so callers can
  /// distinguish "loaded" from "the driver returned an error".
  using ReconfigureCallback = sim::UniqueFunction<void(bool)>;

  FpgaDevice(sim::Simulation& sim, hw::Link& pcie, FpgaSpec spec,
             Logger log = {});
  FpgaDevice(const FpgaDevice&) = delete;
  FpgaDevice& operator=(const FpgaDevice&) = delete;

  /// Download and program `image`.  During reconfiguration the previous
  /// kernels are torn down immediately (the scheduler must not route work
  /// here until `on_done`).  Concurrent requests queue FIFO.  Requires
  /// the image's kernels to fit the usable region.
  void reconfigure(const XclbinImage& image, ReconfigureCallback on_done);

  /// True while a download/programming is in progress or queued.
  [[nodiscard]] bool reconfiguring() const {
    return reconfig_active_ || !reconfig_queue_.empty();
  }

  /// True when `name` is loaded and callable right now.
  [[nodiscard]] bool has_kernel(const std::string& name) const;

  /// Names of callable kernels (the scheduler's "Query Available HW
  /// Kernels", Algorithm 2 line 1).
  [[nodiscard]] std::vector<std::string> available_kernels() const;

  /// Run kernel `name` over `items` work items; FIFO behind earlier
  /// invocations of the same kernel.  Requires has_kernel(name).
  void execute(const std::string& name, std::uint64_t items,
               Callback on_done);

  /// The currently loaded image id, if any.
  [[nodiscard]] std::optional<std::string> loaded_image() const;

  /// Failure injection: take the card offline (XRT device lost).  All
  /// kernels are torn down and every subsequent reconfiguration request
  /// completes without loading anything, so `has_kernel` stays false
  /// until the card is brought back.  The Xar-Trek scheduler degrades
  /// to the CPU-only branches of Algorithm 2; the traditional
  /// always-FPGA flow stalls -- exactly the contrast the tests assert.
  void set_offline(bool offline);
  [[nodiscard]] bool offline() const { return offline_; }

  /// Failure injection: arm a one-shot reconfiguration failure.  The
  /// next reconfiguration to finish programming installs nothing and
  /// completes with success == false (a corrupted bitstream / ICAP
  /// error), after which the card keeps working normally.
  void inject_reconfigure_failure() { fail_armed_ = true; }
  [[nodiscard]] bool reconfigure_failure_armed() const {
    return fail_armed_;
  }

  /// Topology registration: the device is node `self`, the scheduler
  /// that consumes reconfiguration completions is node `scheduler`.
  /// When the partitioner put them on different shards, `reconfigure`'s
  /// `on_done` is delivered through the registered edge's channel;
  /// otherwise completions keep firing on this device's shard.
  void register_notify(sim::PartitionedEngine& eng, sim::NodeId self,
                       sim::NodeId scheduler) {
    notify_ = eng.channel_between(self, scheduler);
  }

  /// Completed reconfigurations (diagnostics / tests).
  [[nodiscard]] std::uint64_t reconfigurations() const { return reconfigs_; }

  /// Bumped on every event that can change `has_kernel` answers
  /// (reconfiguration start/completion, offline transitions).  Callers
  /// that memoize residency probes -- the scheduler's batched decision
  /// pass -- compare versions instead of guessing which code paths can
  /// invalidate them.
  [[nodiscard]] std::uint64_t residency_version() const {
    return residency_version_;
  }

  /// Completed kernel invocations across all CUs.
  [[nodiscard]] std::uint64_t kernel_invocations() const;

  [[nodiscard]] const FpgaSpec& spec() const { return spec_; }

 private:
  struct LoadedKernel {
    HwKernelConfig config;
    std::vector<std::unique_ptr<sim::FifoStation>> cus;

    /// The least-backlogged compute unit (ties -> lowest index).
    [[nodiscard]] sim::FifoStation& pick_cu() const;
  };

  void start_reconfigure();
  /// Fire `done(success)` locally, or through the notify channel when
  /// one is set.
  void notify_done(ReconfigureCallback done, bool success);

  sim::Simulation& sim_;
  hw::Link& pcie_;
  FpgaSpec spec_;
  Logger log_;
  sim::CrossShardChannel notify_;

  std::optional<XclbinImage> loaded_;
  std::map<std::string, LoadedKernel> kernels_;
  std::uint64_t retired_invocations_ = 0;

  bool reconfig_active_ = false;
  bool offline_ = false;
  bool fail_armed_ = false;
  /// Offline transitions ever taken.  A programming attempt stamps this
  /// at start and re-checks at completion, so even an offline blip that
  /// heals before programming finishes tears the bitstream write.
  std::uint64_t offline_events_ = 0;
  std::deque<std::pair<XclbinImage, ReconfigureCallback>> reconfig_queue_;
  std::uint64_t reconfigs_ = 0;
  std::uint64_t residency_version_ = 0;
};

}  // namespace xartrek::fpga
