#include "xrt/xrt.hpp"

#include <algorithm>
#include <utility>

namespace xartrek::xrt {

Buffer::Buffer(Device& device, std::uint64_t bytes)
    : device_(device), host_(bytes, std::byte{0}), shadow_(bytes, std::byte{0}) {}

void Buffer::sync_to_device(Callback on_done) {
  XAR_EXPECTS(on_done != nullptr);
  device_.pcie().transfer(host_.size(),
                          [this, cb = std::move(on_done)]() mutable {
                            std::copy(host_.begin(), host_.end(),
                                      shadow_.begin());
                            cb();
                          });
}

void Buffer::sync_from_device(Callback on_done) {
  XAR_EXPECTS(on_done != nullptr);
  device_.pcie().transfer(shadow_.size(),
                          [this, cb = std::move(on_done)]() mutable {
                            std::copy(shadow_.begin(), shadow_.end(),
                                      host_.begin());
                            cb();
                          });
}

Kernel::Kernel(Device& device, std::string name)
    : device_(device), name_(std::move(name)) {}

void Kernel::enqueue(std::uint64_t items, Callback on_done) {
  if (!device_.kernel_ready(name_)) {
    throw Error("XRT: kernel `" + name_ + "` is not loaded on the device");
  }
  device_.card().execute(name_, items, std::move(on_done));
}

Device::Device(sim::Simulation& sim, fpga::FpgaDevice& card, hw::Link& pcie)
    : sim_(sim), card_(card), pcie_(pcie) {}

void Device::load_xclbin(const fpga::XclbinImage& image,
                         fpga::FpgaDevice::ReconfigureCallback on_done) {
  card_.reconfigure(image, std::move(on_done));
}

void offload(Device& device, Kernel& kernel, Buffer* in, Buffer* out,
             std::uint64_t items, sim::UniqueCallback on_done) {
  XAR_EXPECTS(on_done != nullptr);
  auto run_kernel = [&device, &kernel, out, items,
                     cb = std::move(on_done)]() mutable {
    kernel.enqueue(items, [out, cb = std::move(cb)]() mutable {
      if (out != nullptr) {
        out->sync_from_device(std::move(cb));
      } else {
        cb();
      }
    });
  };
  if (in != nullptr) {
    in->sync_to_device(std::move(run_kernel));
  } else {
    run_kernel();
  }
}

}  // namespace xartrek::xrt
