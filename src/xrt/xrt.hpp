// XRT-style host run-time API.
//
// Xar-Trek's hardware migration path drives the accelerator card through
// OpenCL APIs in the Xilinx Runtime Library: configure the card, manage
// host<->card buffers, and orchestrate kernel execution (paper §3.2).
// This module reproduces that narrow waist: Device wraps the card model,
// Buffer owns host-side bytes and a device-side shadow synchronized over
// PCIe, Kernel launches named compute units, and `offload` chains the
// canonical write-buffers -> execute -> read-buffers sequence that the
// instrumented application performs per hardware call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "fpga/device.hpp"
#include "hw/link.hpp"
#include "sim/callback.hpp"
#include "sim/simulation.hpp"

namespace xartrek::xrt {

class Device;

/// A host buffer with a device-side shadow.  Functional: bytes written on
/// the host genuinely appear device-side after sync_to_device (tests rely
/// on this); costed: each sync occupies the shared PCIe link.
class Buffer {
 public:
  using Callback = sim::UniqueCallback;

  Buffer(Device& device, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t size() const { return host_.size(); }

  /// Host-side contents.
  [[nodiscard]] std::span<std::byte> host() { return host_; }
  [[nodiscard]] std::span<const std::byte> host() const { return host_; }

  /// Device-side contents (valid after a sync; tests/diagnostics).
  [[nodiscard]] std::span<const std::byte> device_shadow() const {
    return shadow_;
  }

  /// DMA host -> card.
  void sync_to_device(Callback on_done);
  /// DMA card -> host.
  void sync_from_device(Callback on_done);

 private:
  Device& device_;
  std::vector<std::byte> host_;
  std::vector<std::byte> shadow_;
};

/// Handle to a named kernel on a device.  Validity is checked at enqueue
/// time: the XCLBIN holding the kernel may have been replaced since the
/// handle was created.
class Kernel {
 public:
  using Callback = sim::UniqueCallback;

  Kernel(Device& device, std::string name);

  /// Launch over `items` work items.  Throws if the kernel is not
  /// currently loaded (the Xar-Trek scheduler is responsible for never
  /// routing work to an absent kernel).
  void enqueue(std::uint64_t items, Callback on_done);

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  Device& device_;
  std::string name_;
};

/// The card as seen by one host process.
class Device {
 public:
  using Callback = sim::UniqueCallback;

  Device(sim::Simulation& sim, fpga::FpgaDevice& card, hw::Link& pcie);

  /// Download an XCLBIN (serialized with any other download).  The
  /// completion's ReconfigureResult mirrors the driver's return code:
  /// non-kOk when the image did not become resident, with the failure
  /// path (offline drop, torn write, injected error) spelled out.
  void load_xclbin(const fpga::XclbinImage& image,
                   fpga::FpgaDevice::ReconfigureCallback on_done);

  /// True if `name` is loaded and callable.
  [[nodiscard]] bool kernel_ready(const std::string& name) const {
    return card_.has_kernel(name);
  }

  [[nodiscard]] fpga::FpgaDevice& card() { return card_; }
  [[nodiscard]] hw::Link& pcie() { return pcie_; }
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }

 private:
  sim::Simulation& sim_;
  fpga::FpgaDevice& card_;
  hw::Link& pcie_;
};

/// The canonical per-call offload sequence the instrumented application
/// performs: sync inputs, execute, sync outputs.  `in` and `out` may be
/// null (kernels without inputs or outputs).
void offload(Device& device, Kernel& kernel, Buffer* in, Buffer* out,
             std::uint64_t items, sim::UniqueCallback on_done);

}  // namespace xartrek::xrt
