// CPU cluster model.
//
// Wraps a processor-sharing resource with a named CPU description.  Job
// demands are expressed directly in milliseconds-at-full-speed *on this
// cluster* -- callers supply per-target demands (an app's x86 demand and
// ARM demand differ), so no frequency scaling happens here.
#pragma once

#include <cstddef>
#include <string>

#include "common/time.hpp"
#include "sim/callback.hpp"
#include "sim/ps_resource.hpp"
#include "sim/simulation.hpp"

namespace xartrek::hw {

/// Static description of a CPU (one row of the paper's testbed table).
struct CpuSpec {
  std::string model;   ///< e.g. "Intel Xeon Bronze 3104"
  int cores;           ///< physical cores available to applications
  double ghz;          ///< nominal clock (documentation / size model only)
  int memory_gb;       ///< installed DRAM (documentation only)
};

/// The paper's x86 host: Dell 7920, Xeon Bronze 3104, 6 cores @ 1.7 GHz.
[[nodiscard]] CpuSpec xeon_bronze_3104();

/// The paper's ARM server: Cavium ThunderX, 96 cores @ 2 GHz.
[[nodiscard]] CpuSpec cavium_thunderx();

/// A multi-core CPU under processor sharing.
///
/// Two distinct notions live here.  *Contention* comes from the jobs in
/// the processor-sharing pool (CPU bursts).  *Load* -- the metric the
/// Xar-Trek scheduler samples, and the unit of every threshold -- is the
/// number of processes resident on the server (paper Table 3 defines
/// low/medium/high by process count).  A process between CPU bursts, or
/// blocked on an FPGA/ARM offload, still counts toward load; processes
/// therefore attach explicitly for their lifetime.
class CpuCluster {
 public:
  using JobId = sim::PsResource::JobId;
  using Callback = sim::UniqueCallback;

  CpuCluster(sim::Simulation& sim, CpuSpec spec);

  /// Run `demand` milliseconds-at-full-speed of work; `on_complete` fires
  /// when it finishes under whatever contention materializes.
  JobId run(Duration demand, Callback on_complete);

  /// Abort a job (used when an app is torn down at a horizon).
  bool cancel(JobId id) { return pool_.cancel(id); }

  /// A process arrived on / departed from this server.
  void attach_process() { ++resident_; }
  void detach_process() {
    XAR_EXPECTS(resident_ > 0);
    --resident_;
  }

  /// Batched bookkeeping: `n` processes arrive/depart in one
  /// process-table update.  Load generators at cluster scale attach a
  /// cell's whole cohort with one call instead of funneling a million
  /// per-process updates through the table.
  void attach_processes(int n) {
    XAR_EXPECTS(n >= 0);
    resident_ += n;
  }
  void detach_processes(int n) {
    XAR_EXPECTS(n >= 0 && n <= resident_);
    resident_ -= n;
  }

  /// Grow the PS pool up front so a known cohort submits without a
  /// single reallocation (cluster sweeps; optional).
  void reserve_jobs(std::size_t n) { pool_.reserve_jobs(n); }

  /// Gray-failure hook (kCellSlow): scale this cluster's service rate;
  /// 1.0 restores nominal speed.  In-flight bursts finish later (or
  /// earlier, on restore) but never lose attained work.
  void set_service_scale(double scale) { pool_.set_capacity_scale(scale); }
  [[nodiscard]] double service_scale() const {
    return pool_.capacity_scale();
  }

  /// Number of resident processes -- the scheduler's load metric.
  [[nodiscard]] int load() const { return resident_; }

  /// Jobs currently inside the PS pool (contention diagnostics).
  [[nodiscard]] int active_jobs() const {
    return static_cast<int>(pool_.active_jobs());
  }

  [[nodiscard]] const CpuSpec& spec() const { return spec_; }
  [[nodiscard]] const sim::PsResource& pool() const { return pool_; }

 private:
  CpuSpec spec_;
  sim::PsResource pool_;
  int resident_ = 0;
};

}  // namespace xartrek::hw
