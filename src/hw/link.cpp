#include "hw/link.hpp"

#include <utility>

#include "obs/registry.hpp"

namespace xartrek::hw {

LinkSpec ethernet_1gbps() {
  // 1 Gbps = 125 MB/s = 0.125 MB/ms.  Latency covers NIC + kernel network
  // stack traversal on both ends (order of a hundred microseconds).
  return LinkSpec{"ethernet-1gbps", 0.125, Duration::micros(120)};
}

LinkSpec pcie_gen3() {
  // The paper quotes 32 GB/s for the FPGA attachment; DMA setup costs a
  // few microseconds per transfer.
  return LinkSpec{"pcie-32gbps", 32.0, Duration::micros(5)};
}

Link::Link(sim::Simulation& sim, LinkSpec spec)
    : sim_(sim),
      spec_(std::move(spec)),
      pool_(sim, sim::PsResource::Config{spec_.name,
                                         spec_.bandwidth_mb_per_ms,
                                         spec_.bandwidth_mb_per_ms}) {
  XAR_EXPECTS(spec_.bandwidth_mb_per_ms > 0.0);
}

void Link::transfer(std::uint64_t bytes, Callback on_complete) {
  XAR_EXPECTS(on_complete != nullptr);
  if (down_) {
    // Partitioned: the admission parks until the link is repaired.
    ++stats_.parked_transfers;
    parked_.push(ParkedTransfer{bytes, std::move(on_complete)});
    return;
  }
  if (degraded_ && degrade_rng_.bernoulli(drop_probability_)) {
    // Lossy wire: the frame vanishes and its callback never fires.
    // The draw happens on this link's own shard, in admission order,
    // so serial and parallel runs lose the identical frames.
    ++stats_.dropped_transfers;
    return;
  }
  const double mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
  // Fixed latency first, then bandwidth-shared payload time.  The
  // latency is identical for every transfer (degradation inflates it
  // uniformly, and the clamp below keeps admissions FIFO across a
  // degradation edge), so the events fire in the order they were
  // scheduled and the front of `in_latency_` is always the transfer
  // whose latency just elapsed.
  in_latency_.push(std::move(on_complete));
  // Occupancy high-water: in-flight only grows at a transfer() call, so
  // sampling here (latency-phase entries plus bandwidth-phase jobs)
  // captures the true peak without wrapping every completion.
  ++stats_.transfers;
  const std::size_t in_flight_now = in_latency_.size() + pool_.active_jobs();
  if (in_flight_now > stats_.max_in_flight) {
    stats_.max_in_flight = in_flight_now;
  }
  const double factor = degraded_ ? latency_factor_ : 1.0;
  double exit_ms = sim_.now().to_ms() + spec_.latency.to_ms() * factor;
  // A link is a FIFO pipe: a frame admitted under inflated latency must
  // still exit before one admitted after the degradation lifts.
  if (exit_ms < last_entry_ms_) exit_ms = last_entry_ms_;
  last_entry_ms_ = exit_ms;
  sim_.schedule_in(Duration::ms(exit_ms - sim_.now().to_ms()),
                   [this, mb] { enter_pool(mb); });
}

void Link::transfer_verified(std::uint64_t bytes, std::uint64_t checksum,
                             VerifiedCallback on_complete) {
  XAR_EXPECTS(on_complete != nullptr);
  // The corruption draw happens at admission (deterministic, in event
  // order on this shard); the receiver observes it as a checksum
  // mismatch when the frame lands.  A corrupted frame's carried
  // checksum is re-derived over the perturbed payload, so the compare
  // fails; an intact frame re-derives to the sender's value.
  bool intact = true;
  if (corrupt_next_ > 0) {
    --corrupt_next_;
    intact = false;
  } else if (corrupting_ && corrupt_rng_.bernoulli(corrupt_probability_)) {
    intact = false;
  }
  if (!intact) ++stats_.corrupted_transfers;
  const std::uint64_t delivered =
      intact ? checksum : fnv_mix(checksum, 0xC0FFEEull);
  transfer(bytes, [carried = checksum, delivered,
                   cb = std::move(on_complete)]() mutable {
    cb(carried == delivered);
  });
}

void Link::set_down(bool down) {
  if (down == down_) return;
  down_ = down;
  if (down) {
    ++stats_.downs;
    return;
  }
  // Repaired: replay the parked admissions in arrival order.  Each
  // re-enters transfer() and pays full latency + bandwidth from now --
  // the queue drains through the same wire model as live traffic.
  while (!parked_.empty()) {
    ParkedTransfer p = parked_.pop();
    transfer(p.bytes, std::move(p.on_complete));
  }
}

void Link::set_degraded(double latency_factor, double drop_probability,
                        Rng rng) {
  XAR_EXPECTS(latency_factor >= 1.0);
  XAR_EXPECTS(drop_probability >= 0.0 && drop_probability <= 1.0);
  if (!degraded_) ++stats_.degrades;
  degraded_ = true;
  latency_factor_ = latency_factor;
  drop_probability_ = drop_probability;
  degrade_rng_ = rng;
}

void Link::clear_degraded() {
  degraded_ = false;
  latency_factor_ = 1.0;
  drop_probability_ = 0.0;
}

void Link::set_corrupting(double corrupt_probability, Rng rng) {
  XAR_EXPECTS(corrupt_probability >= 0.0 && corrupt_probability <= 1.0);
  corrupting_ = true;
  corrupt_probability_ = corrupt_probability;
  corrupt_rng_ = rng;
}

void Link::clear_corrupting() {
  corrupting_ = false;
  corrupt_probability_ = 0.0;
}

void Link::enter_pool(double mb) {
  XAR_ASSERT(!in_latency_.empty());
  Callback cb = in_latency_.pop();
  if (delivery_.connected()) {
    // The receiver lives on another shard: when the last byte lands,
    // hand the completion to the mailbox instead of running it here.
    const std::uint32_t slot = remote_.acquire();
    remote_[slot] = std::move(cb);
    pool_.submit(mb, [this, slot] {
      Callback done = std::move(remote_[slot]);
      remote_.release(slot);
      delivery_.deliver(std::move(done));
    });
    return;
  }
  pool_.submit(mb, std::move(cb));
}

void Link::register_metrics(obs::Registry& registry,
                            const std::string& prefix) const {
  registry.link_counter(prefix + ".transfers", &stats_.transfers);
  registry.link_counter(prefix + ".downs", &stats_.downs);
  registry.link_counter(prefix + ".parked_transfers",
                        &stats_.parked_transfers);
  registry.link_counter(prefix + ".degrades", &stats_.degrades);
  registry.link_counter(prefix + ".dropped_transfers",
                        &stats_.dropped_transfers);
  registry.link_counter(prefix + ".corrupted_transfers",
                        &stats_.corrupted_transfers);
  // size_t is not guaranteed to be uint64_t; snapshot through a probe.
  registry.probe(
      prefix + ".max_in_flight",
      [this] { return static_cast<double>(stats_.max_in_flight); },
      obs::Registry::Kind::kGauge);
}

}  // namespace xartrek::hw
