#include "hw/link.hpp"

#include <utility>

namespace xartrek::hw {

LinkSpec ethernet_1gbps() {
  // 1 Gbps = 125 MB/s = 0.125 MB/ms.  Latency covers NIC + kernel network
  // stack traversal on both ends (order of a hundred microseconds).
  return LinkSpec{"ethernet-1gbps", 0.125, Duration::micros(120)};
}

LinkSpec pcie_gen3() {
  // The paper quotes 32 GB/s for the FPGA attachment; DMA setup costs a
  // few microseconds per transfer.
  return LinkSpec{"pcie-32gbps", 32.0, Duration::micros(5)};
}

Link::Link(sim::Simulation& sim, LinkSpec spec)
    : sim_(sim),
      spec_(std::move(spec)),
      pool_(sim, sim::PsResource::Config{spec_.name,
                                         spec_.bandwidth_mb_per_ms,
                                         spec_.bandwidth_mb_per_ms}) {
  XAR_EXPECTS(spec_.bandwidth_mb_per_ms > 0.0);
}

void Link::transfer(std::uint64_t bytes, Callback on_complete) {
  XAR_EXPECTS(on_complete != nullptr);
  if (down_) {
    // Partitioned: the admission parks until the link is repaired.
    ++stats_.parked_transfers;
    parked_.push(ParkedTransfer{bytes, std::move(on_complete)});
    return;
  }
  const double mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
  // Fixed latency first, then bandwidth-shared payload time.  The
  // latency is identical for every transfer, so the events fire in the
  // order they were scheduled and the front of `in_latency_` is always
  // the transfer whose latency just elapsed.
  in_latency_.push(std::move(on_complete));
  // Occupancy high-water: in-flight only grows at a transfer() call, so
  // sampling here (latency-phase entries plus bandwidth-phase jobs)
  // captures the true peak without wrapping every completion.
  ++stats_.transfers;
  const std::size_t in_flight_now = in_latency_.size() + pool_.active_jobs();
  if (in_flight_now > stats_.max_in_flight) {
    stats_.max_in_flight = in_flight_now;
  }
  sim_.schedule_in(spec_.latency, [this, mb] { enter_pool(mb); });
}

void Link::set_down(bool down) {
  if (down == down_) return;
  down_ = down;
  if (down) {
    ++stats_.downs;
    return;
  }
  // Repaired: replay the parked admissions in arrival order.  Each
  // re-enters transfer() and pays full latency + bandwidth from now --
  // the queue drains through the same wire model as live traffic.
  while (!parked_.empty()) {
    ParkedTransfer p = parked_.pop();
    transfer(p.bytes, std::move(p.on_complete));
  }
}

void Link::enter_pool(double mb) {
  XAR_ASSERT(!in_latency_.empty());
  Callback cb = in_latency_.pop();
  if (delivery_.connected()) {
    // The receiver lives on another shard: when the last byte lands,
    // hand the completion to the mailbox instead of running it here.
    const std::uint32_t slot = remote_.acquire();
    remote_[slot] = std::move(cb);
    pool_.submit(mb, [this, slot] {
      Callback done = std::move(remote_[slot]);
      remote_.release(slot);
      delivery_.deliver(std::move(done));
    });
    return;
  }
  pool_.submit(mb, std::move(cb));
}

}  // namespace xartrek::hw
