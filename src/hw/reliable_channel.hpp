// Reliable delivery over an unreliable (gray-degraded) link.
//
// A degraded hw::Link silently drops frames and inflates latency; a
// ReliableChannel restores at-least-once transmission with exactly-once
// *delivery*: every message gets a monotone sequence number, each
// attempt arms a per-message timeout, a lost or late attempt is re-sent
// under capped exponential backoff with deterministic seed-split
// jitter, and copies of an already-delivered message (a slow first
// attempt racing its own retry) are suppressed by the sequence number
// so the completion callback fires exactly once.
//
// Shard discipline: the channel's state lives on the sending side, so
// it requires a route-less link -- one whose completions fire on the
// sender's own shard (the drain/control-plane shape; see
// Link::register_route).  All timers and retries then run on one shard
// and the retry trace is deterministic.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "hw/link.hpp"
#include "sim/callback.hpp"
#include "sim/simulation.hpp"
#include "sim/slot_pool.hpp"

namespace xartrek::hw {

class ReliableChannel {
 public:
  using Callback = sim::UniqueCallback;

  struct Options {
    /// Per-attempt delivery deadline.  Must exceed the link's worst
    /// undegraded round-trip or healthy traffic re-sends spuriously.
    Duration timeout = Duration::ms(2.0);
    /// Backoff before retry k is base * 2^min(k-1, cap), plus jitter.
    Duration backoff_base = Duration::ms(0.5);
    std::uint32_t backoff_cap_exponent = 6;
    /// Uniform jitter in [0, fraction) of the backoff, drawn from the
    /// channel's split Rng -- deterministic, but de-synchronized across
    /// channels seeded from different streams.
    double jitter_fraction = 0.25;
    /// Attempts before the message is abandoned (stat only; with drop
    /// probability p the residual loss chance is p^max_attempts).
    std::uint32_t max_attempts = 12;
  };

  struct Stats {
    std::uint64_t sends = 0;      ///< messages accepted
    std::uint64_t attempts = 0;   ///< wire transmissions (incl. retries)
    std::uint64_t retries = 0;    ///< re-transmissions after timeout
    std::uint64_t timeouts = 0;   ///< per-attempt deadlines that expired
    std::uint64_t duplicates_suppressed = 0;  ///< late copies swallowed
    std::uint64_t corrupt_detected = 0;  ///< checksum-failed copies dropped
    std::uint64_t delivered = 0;  ///< callbacks fired (exactly once each)
    std::uint64_t abandoned = 0;  ///< messages given up after max_attempts
  };

  /// `rng` should be a split stream of the experiment seed; it feeds
  /// only the backoff jitter.
  ReliableChannel(sim::Simulation& sim, Link& link, Options opts, Rng rng);
  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Send `bytes`; `on_delivered` fires exactly once when the first
  /// copy of the message lands (or never, if every attempt is lost and
  /// the message is abandoned -- see Stats::abandoned).  Returns the
  /// message's sequence number.
  std::uint64_t send(std::uint64_t bytes, Callback on_delivered);

  /// Messages accepted but not yet delivered or abandoned.
  [[nodiscard]] std::size_t in_flight() const { return live_; }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Options& options() const { return opts_; }

  /// Link the stats counters into a metrics registry under `prefix`.
  /// Only for channels that outlive the registry's snapshots --
  /// rebuildable channels (the cluster drain path) should be read
  /// through Registry::probe instead.
  void register_metrics(obs::Registry& registry,
                        const std::string& prefix) const;

 private:
  struct Message {
    std::uint64_t seq = 0;
    std::uint64_t bytes = 0;
    std::uint32_t attempts = 0;
    Callback on_delivered;
    sim::Simulation::EventHandle timer;
  };

  void attempt(std::uint32_t slot);
  void copy_landed(std::uint32_t slot, std::uint32_t generation,
                   std::uint64_t seq, bool intact);
  void attempt_timed_out(std::uint32_t slot, std::uint32_t generation,
                         std::uint64_t seq);
  [[nodiscard]] Duration backoff_for(std::uint32_t retry_number);

  sim::Simulation& sim_;
  Link& link_;
  Options opts_;
  Rng rng_;
  Stats stats_;
  sim::SlotPool<Message> messages_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;  ///< 0 is "no message"
};

}  // namespace xartrek::hw
