// Interconnect link model.
//
// A Link is a bandwidth-shared channel with a fixed per-message latency.
// The testbed has two: 1 Gbps Ethernet between the x86 and ARM servers
// (carries Popcorn state transfers and DSM page pulls) and a PCIe
// attachment to the Alveo card (carries XCLBIN downloads and kernel
// buffers).  Both are shared among all concurrent users, which is why
// the paper measures migration cost "in locus" rather than predicting it.
#pragma once

#include <string>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/callback.hpp"
#include "sim/ps_resource.hpp"
#include "sim/ring.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"
#include "sim/slot_pool.hpp"
#include "sim/topology.hpp"

namespace xartrek::hw {

/// Static description of a link.
struct LinkSpec {
  std::string name;
  double bandwidth_mb_per_ms;  ///< MB per millisecond (1 GB/s = 1.0)
  Duration latency;            ///< per-transfer fixed cost (propagation +
                               ///< stack traversal)
};

/// The paper's 1 Gbps server-to-server Ethernet.
[[nodiscard]] LinkSpec ethernet_1gbps();

/// The paper's PCIe attachment (32 GB/s nominal).
[[nodiscard]] LinkSpec pcie_gen3();

/// A shared channel inside a Simulation.
class Link {
 public:
  using Callback = sim::UniqueCallback;

  /// Multi-transfer occupancy counters (the DSM window and the overlap
  /// benches read these; occupancy counts latency-phase and
  /// bandwidth-phase transfers alike).
  struct Stats {
    std::uint64_t transfers = 0;
    std::size_t max_in_flight = 0;
    /// set_down(true) transitions (each partition counted once).
    std::uint64_t downs = 0;
    /// Admissions that arrived while the link was partitioned and were
    /// parked for replay.
    std::uint64_t parked_transfers = 0;
    /// set_degraded transitions into the degraded state.
    std::uint64_t degrades = 0;
    /// Transfers silently lost while degraded (callback never fires;
    /// an upper retry layer recovers).
    std::uint64_t dropped_transfers = 0;
    /// Verified frames whose payload the wire corrupted in flight
    /// (receiver-side checksum verify reports them as bad).
    std::uint64_t corrupted_transfers = 0;
  };

  Link(sim::Simulation& sim, LinkSpec spec);

  /// Transfer `bytes` across the link; `on_complete` fires when the last
  /// byte lands.  Zero-byte transfers still pay the latency.
  /// While the link is degraded the transfer may be silently dropped
  /// (the callback never fires) -- callers needing delivery guarantees
  /// wrap the link in a ReliableChannel or verify via
  /// transfer_verified.
  void transfer(std::uint64_t bytes, Callback on_complete);

  /// Checksummed frame: the sender computes `checksum` over the frame
  /// (fnv1a / fnv1a_frame) and the receiver re-derives it when the last
  /// byte lands.  `on_complete(ok)` reports whether the delivered frame
  /// still matches -- false when the wire corrupted the payload in
  /// flight (see set_corrupting).  Degraded-mode drops still apply: a
  /// dropped frame's callback never fires at all.
  using VerifiedCallback = sim::UniqueFunction<void(bool)>;
  void transfer_verified(std::uint64_t bytes, std::uint64_t checksum,
                         VerifiedCallback on_complete);

  /// Topology registration: this link's sending end is node `self`,
  /// its receiving end node `receiver`, and the partitioner already
  /// derived where both live.  Completions are routed to the far end's
  /// shard through the registered `self -> receiver` edge's channel --
  /// or stay local when the partitioner put both on one shard.  This
  /// replaces hand-assembled CrossShardChannel wiring at call sites.
  /// Completions stay pooled: the in-pool event captures only
  /// {this, slot}, so the steady state remains allocation-free.
  void register_route(sim::PartitionedEngine& eng, sim::NodeId self,
                      sim::NodeId receiver) {
    delivery_ = eng.channel_between(self, receiver);
  }

  /// Fault injection: partition the link.  While down, new admissions
  /// park FIFO instead of entering the wire; transfers already in their
  /// latency or bandwidth phase complete normally (store-and-forward:
  /// the bytes already left the sender).  Repairing the link replays
  /// every parked admission in arrival order, each paying the full
  /// latency + bandwidth cost from the repair instant.
  void set_down(bool down);
  [[nodiscard]] bool down() const { return down_; }

  /// Gray-failure injection (kLinkDegraded): inflate the fixed latency
  /// by `latency_factor` (>= 1) and silently drop each admission with
  /// probability `drop_probability`.  `rng` should be a split stream of
  /// the chaos seed; draws happen only while degraded and only on this
  /// link's own shard, in admission order, so serial and parallel runs
  /// see the identical loss pattern and non-degraded runs draw nothing.
  void set_degraded(double latency_factor, double drop_probability, Rng rng);
  void clear_degraded();
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Gray-failure injection (kDsmCorrupt): corrupt each verified
  /// frame's payload in flight with probability `corrupt_probability`.
  /// Plain transfers are unaffected (nothing verifies them).  Same
  /// determinism contract as set_degraded.
  void set_corrupting(double corrupt_probability, Rng rng);
  void clear_corrupting();
  [[nodiscard]] bool corrupting() const { return corrupting_; }

  /// Deterministic one-shot arm: corrupt exactly the next `count`
  /// verified frames (tests pin "detected and retried exactly once"
  /// with this; it needs no Rng).
  void corrupt_next(std::uint64_t count) { corrupt_next_ += count; }

  /// Admissions currently parked behind a partition.
  [[nodiscard]] std::size_t parked() const { return parked_.size(); }

  /// Transfers currently in flight.
  [[nodiscard]] std::size_t in_flight() const { return pool_.active_jobs(); }

  /// Total bytes delivered (tests).
  [[nodiscard]] double delivered_mb() const { return pool_.delivered_work(); }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Link the stats counters into a metrics registry under `prefix`
  /// (e.g. "cell0.link").  The Stats struct stays the storage -- the
  /// registry reads it only at snapshot time, so this Link must
  /// outlive the registry's snapshots.
  void register_metrics(obs::Registry& registry,
                        const std::string& prefix) const;

  [[nodiscard]] const LinkSpec& spec() const { return spec_; }

 private:
  void enter_pool(double mb);

  sim::Simulation& sim_;
  LinkSpec spec_;
  Stats stats_;
  sim::PsResource pool_;  // demand unit: megabytes
  /// Completions of transfers still in their fixed-latency phase.  The
  /// latency is constant, so these events fire strictly FIFO; parking
  /// the callbacks here lets the scheduled event capture only
  /// {this, size} -- trivially copyable, no per-transfer allocation.
  /// A ring, not a deque: a windowed page stream makes this queue
  /// breathe every wave, and deque chunk churn would allocate each time.
  sim::RingQueue<Callback> in_latency_;
  /// Cross-shard delivery (inert by default: completions fire locally).
  sim::CrossShardChannel delivery_;
  /// Completions awaiting bandwidth when deliveries are remote; the
  /// PS pool finishes transfers out of order, so FIFO parking does not
  /// work here -- slots do.
  sim::SlotPool<Callback> remote_;
  /// Partition state: admissions refused while down wait here, FIFO.
  struct ParkedTransfer {
    std::uint64_t bytes = 0;
    Callback on_complete;
  };
  bool down_ = false;
  sim::RingQueue<ParkedTransfer> parked_;
  // Gray-failure state.  The latency clamp keeps the in_latency_ FIFO
  // honest across degradation edges: latency-phase events must fire in
  // admission order, so an admission never schedules its entry earlier
  // than the previous one's.
  bool degraded_ = false;
  double latency_factor_ = 1.0;
  double drop_probability_ = 0.0;
  Rng degrade_rng_{0};
  bool corrupting_ = false;
  double corrupt_probability_ = 0.0;
  Rng corrupt_rng_{0};
  std::uint64_t corrupt_next_ = 0;  ///< one-shot corruption arm
  double last_entry_ms_ = 0.0;  ///< latest scheduled latency-phase exit
};

}  // namespace xartrek::hw
