// Interconnect link model.
//
// A Link is a bandwidth-shared channel with a fixed per-message latency.
// The testbed has two: 1 Gbps Ethernet between the x86 and ARM servers
// (carries Popcorn state transfers and DSM page pulls) and a PCIe
// attachment to the Alveo card (carries XCLBIN downloads and kernel
// buffers).  Both are shared among all concurrent users, which is why
// the paper measures migration cost "in locus" rather than predicting it.
#pragma once

#include <functional>
#include <string>

#include "common/time.hpp"
#include "sim/ps_resource.hpp"
#include "sim/simulation.hpp"

namespace xartrek::hw {

/// Static description of a link.
struct LinkSpec {
  std::string name;
  double bandwidth_mb_per_ms;  ///< MB per millisecond (1 GB/s = 1.0)
  Duration latency;            ///< per-transfer fixed cost (propagation +
                               ///< stack traversal)
};

/// The paper's 1 Gbps server-to-server Ethernet.
[[nodiscard]] LinkSpec ethernet_1gbps();

/// The paper's PCIe attachment (32 GB/s nominal).
[[nodiscard]] LinkSpec pcie_gen3();

/// A shared channel inside a Simulation.
class Link {
 public:
  Link(sim::Simulation& sim, LinkSpec spec);

  /// Transfer `bytes` across the link; `on_complete` fires when the last
  /// byte lands.  Zero-byte transfers still pay the latency.
  void transfer(std::uint64_t bytes, std::function<void()> on_complete);

  /// Transfers currently in flight.
  [[nodiscard]] std::size_t in_flight() const { return pool_.active_jobs(); }

  /// Total bytes delivered (tests).
  [[nodiscard]] double delivered_mb() const { return pool_.delivered_work(); }

  [[nodiscard]] const LinkSpec& spec() const { return spec_; }

 private:
  sim::Simulation& sim_;
  LinkSpec spec_;
  sim::PsResource pool_;  // demand unit: megabytes
};

}  // namespace xartrek::hw
