#include "hw/reliable_channel.hpp"

#include <utility>

#include "common/assert.hpp"
#include "obs/registry.hpp"

namespace xartrek::hw {

ReliableChannel::ReliableChannel(sim::Simulation& sim, Link& link,
                                 Options opts, Rng rng)
    : sim_(sim), link_(link), opts_(opts), rng_(rng) {
  XAR_EXPECTS(opts_.timeout > Duration::zero());
  XAR_EXPECTS(opts_.backoff_base > Duration::zero());
  XAR_EXPECTS(opts_.max_attempts >= 1);
  XAR_EXPECTS(opts_.jitter_fraction >= 0.0);
}

std::uint64_t ReliableChannel::send(std::uint64_t bytes,
                                    Callback on_delivered) {
  XAR_EXPECTS(on_delivered != nullptr);
  const std::uint32_t slot = messages_.acquire();
  Message& m = messages_[slot];
  m.seq = next_seq_++;
  m.bytes = bytes;
  m.attempts = 0;
  m.on_delivered = std::move(on_delivered);
  ++live_;
  ++stats_.sends;
  const std::uint64_t seq = m.seq;
  attempt(slot);
  return seq;
}

void ReliableChannel::attempt(std::uint32_t slot) {
  Message& m = messages_[slot];
  ++m.attempts;
  ++stats_.attempts;
  const std::uint32_t generation = messages_.generation_of(slot);
  const std::uint64_t seq = m.seq;
  // The wire copy, framed with an FNV checksum: a degraded link may
  // drop it (callback never fires), corrupt it (checksum mismatch), or
  // deliver it after this attempt's deadline (duplicate of a retry).
  const std::uint64_t checksum = fnv1a_frame(m.bytes, seq);
  link_.transfer_verified(m.bytes, checksum,
                          [this, slot, generation, seq](bool intact) {
                            copy_landed(slot, generation, seq, intact);
                          });
  m.timer = sim_.schedule_in(opts_.timeout, [this, slot, generation, seq] {
    attempt_timed_out(slot, generation, seq);
  });
}

void ReliableChannel::copy_landed(std::uint32_t slot,
                                  std::uint32_t generation,
                                  std::uint64_t seq, bool intact) {
  // Sequence-number dedup: the slot may have been released (message
  // already delivered by an earlier copy) and even recycled for a newer
  // message.  Either way the (generation, seq) pair no longer matches
  // and the late copy is swallowed.
  if (!messages_.live_at(slot, generation) || messages_[slot].seq != seq) {
    ++stats_.duplicates_suppressed;
    return;
  }
  if (!intact) {
    // A corrupted copy is a *detected* loss: discard it and let the
    // attempt's armed deadline drive the retry, exactly as if the
    // frame had been dropped on the wire.
    ++stats_.corrupt_detected;
    return;
  }
  Message& m = messages_[slot];
  m.timer.cancel();
  Callback done = std::move(m.on_delivered);
  m.on_delivered = nullptr;
  messages_.release(slot);
  --live_;
  ++stats_.delivered;
  done();
}

void ReliableChannel::attempt_timed_out(std::uint32_t slot,
                                        std::uint32_t generation,
                                        std::uint64_t seq) {
  if (!messages_.live_at(slot, generation) || messages_[slot].seq != seq) {
    return;  // delivered (and possibly recycled) before the deadline
  }
  ++stats_.timeouts;
  Message& m = messages_[slot];
  if (m.attempts >= opts_.max_attempts) {
    m.on_delivered = nullptr;
    messages_.release(slot);
    --live_;
    ++stats_.abandoned;
    return;
  }
  ++stats_.retries;
  const Duration delay = backoff_for(m.attempts);
  m.timer = sim_.schedule_in(delay, [this, slot, generation, seq] {
    if (!messages_.live_at(slot, generation) ||
        messages_[slot].seq != seq) {
      return;  // a straggler copy of an earlier attempt landed meanwhile
    }
    attempt(slot);
  });
}

Duration ReliableChannel::backoff_for(std::uint32_t retry_number) {
  XAR_ASSERT(retry_number >= 1);
  const std::uint32_t exponent =
      retry_number - 1 < opts_.backoff_cap_exponent
          ? retry_number - 1
          : opts_.backoff_cap_exponent;
  const double base_ms =
      opts_.backoff_base.to_ms() * static_cast<double>(1ull << exponent);
  const double jitter =
      opts_.jitter_fraction > 0.0
          ? rng_.uniform_real(0.0, opts_.jitter_fraction)
          : 0.0;
  return Duration::ms(base_ms * (1.0 + jitter));
}

void ReliableChannel::register_metrics(obs::Registry& registry,
                                       const std::string& prefix) const {
  registry.link_counter(prefix + ".sends", &stats_.sends);
  registry.link_counter(prefix + ".attempts", &stats_.attempts);
  registry.link_counter(prefix + ".retries", &stats_.retries);
  registry.link_counter(prefix + ".timeouts", &stats_.timeouts);
  registry.link_counter(prefix + ".duplicates_suppressed",
                        &stats_.duplicates_suppressed);
  registry.link_counter(prefix + ".corrupt_detected",
                        &stats_.corrupt_detected);
  registry.link_counter(prefix + ".delivered", &stats_.delivered);
  registry.link_counter(prefix + ".abandoned", &stats_.abandoned);
}

}  // namespace xartrek::hw
