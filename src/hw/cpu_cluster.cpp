#include "hw/cpu_cluster.hpp"

#include <utility>

namespace xartrek::hw {

CpuSpec xeon_bronze_3104() {
  return CpuSpec{"Intel Xeon Bronze 3104", 6, 1.7, 64};
}

CpuSpec cavium_thunderx() {
  return CpuSpec{"Cavium ThunderX", 96, 2.0, 128};
}

CpuCluster::CpuCluster(sim::Simulation& sim, CpuSpec spec)
    : spec_(std::move(spec)),
      pool_(sim, sim::PsResource::Config{
                     spec_.model,
                     /*capacity=*/static_cast<double>(spec_.cores),
                     /*per_job_cap=*/1.0}) {
  XAR_EXPECTS(spec_.cores > 0);
}

CpuCluster::JobId CpuCluster::run(Duration demand, Callback on_complete) {
  return pool_.submit(demand.to_ms(), std::move(on_complete));
}

}  // namespace xartrek::hw
