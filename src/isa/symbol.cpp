#include "isa/symbol.hpp"

#include <algorithm>
#include <set>

#include "common/assert.hpp"

namespace xartrek::isa {

std::uint64_t Symbol::max_size() const {
  std::uint64_t m = 0;
  for (const auto& [isa, sz] : size_by_isa) m = std::max(m, sz);
  return m;
}

std::uint64_t Symbol::size_for(IsaKind isa) const {
  auto it = size_by_isa.find(isa);
  return it == size_by_isa.end() ? 0 : it->second;
}

std::uint64_t AlignedLayout::address_of(const std::string& name) const {
  auto it = vaddr_of.find(name);
  XAR_EXPECTS(it != vaddr_of.end());
  return it->second;
}

namespace {
[[nodiscard]] constexpr bool is_pow2(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}
[[nodiscard]] constexpr std::uint64_t align_up(std::uint64_t v,
                                               std::uint64_t a) {
  return (v + a - 1) & ~(a - 1);
}
}  // namespace

AlignedLayout align_symbols(const std::vector<Symbol>& symbols,
                            const std::vector<IsaKind>& isas,
                            std::uint64_t base) {
  XAR_EXPECTS(!isas.empty());
  std::set<std::string> seen;
  for (const auto& s : symbols) {
    if (!is_pow2(s.alignment)) {
      throw Error("symbol `" + s.name + "` has non-power-of-two alignment");
    }
    if (!seen.insert(s.name).second) {
      throw Error("duplicate symbol `" + s.name + "` in alignment input");
    }
  }

  AlignedLayout layout;
  for (IsaKind isa : isas) layout.padding_bytes[isa] = 0;

  std::uint64_t cursor = base;
  const Section order[] = {Section::kText, Section::kRodata, Section::kData,
                           Section::kBss};
  for (Section sec : order) {
    for (const auto& s : symbols) {
      if (s.section != sec) continue;
      cursor = align_up(cursor, s.alignment);
      layout.vaddr_of[s.name] = cursor;
      const std::uint64_t window = s.max_size();
      for (IsaKind isa : isas) {
        const std::uint64_t own = s.size_for(isa);
        XAR_ASSERT(own <= window);
        layout.padding_bytes[isa] += window - own;
      }
      cursor += window;
    }
  }
  layout.image_span = cursor - base;
  return layout;
}

}  // namespace xartrek::isa
