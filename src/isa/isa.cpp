#include "isa/isa.hpp"

#include "common/assert.hpp"

namespace xartrek::isa {

std::vector<IsaKind> all_isas() {
  return {IsaKind::kX86_64, IsaKind::kAarch64};
}

bool IsaInfo::has_register(const std::string& name) const {
  for (const auto& r : general_regs) {
    if (r.name == name) return true;
  }
  return false;
}

bool IsaInfo::is_callee_saved(const std::string& name) const {
  for (const auto& r : general_regs) {
    if (r.name == name) return r.callee_saved;
  }
  return false;
}

const IsaInfo& x86_64_info() {
  static const IsaInfo info = [] {
    IsaInfo i;
    i.kind = IsaKind::kX86_64;
    i.general_regs = {
        {"rax", false}, {"rbx", true},  {"rcx", false}, {"rdx", false},
        {"rsi", false}, {"rdi", false}, {"rbp", true},  {"rsp", true},
        {"r8", false},  {"r9", false},  {"r10", false}, {"r11", false},
        {"r12", true},  {"r13", true},  {"r14", true},  {"r15", true},
    };
    i.cc.integer_arg_regs = {"rdi", "rsi", "rdx", "rcx", "r8", "r9"};
    i.cc.integer_ret_reg = "rax";
    i.cc.stack_pointer = "rsp";
    i.cc.frame_pointer = "rbp";
    i.cc.link_register = "";  // return address pushed on the stack
    i.layout.red_zone_bytes = 128;
    // x86-64 is a CISC encoding: fewer, denser instructions per IR op.
    i.code_bytes_per_op = 3.8;
    return i;
  }();
  return info;
}

const IsaInfo& aarch64_info() {
  static const IsaInfo info = [] {
    IsaInfo i;
    i.kind = IsaKind::kAarch64;
    i.general_regs.reserve(33);
    for (int r = 0; r <= 28; ++r) {
      // x19..x28 are callee-saved under AAPCS64.
      i.general_regs.push_back(
          Register{"x" + std::to_string(r), r >= 19 && r <= 28});
    }
    i.general_regs.push_back(Register{"x29", true});   // frame pointer
    i.general_regs.push_back(Register{"x30", false});  // link register
    i.general_regs.push_back(Register{"sp", true});
    i.cc.integer_arg_regs = {"x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7"};
    i.cc.integer_ret_reg = "x0";
    i.cc.stack_pointer = "sp";
    i.cc.frame_pointer = "x29";
    i.cc.link_register = "x30";
    i.layout.red_zone_bytes = 0;
    // Fixed 4-byte encoding, and RISC lowering emits ~18% more
    // instructions for the same IR.
    i.code_bytes_per_op = 4.0 * 1.18;
    return i;
  }();
  return info;
}

const IsaInfo& info_for(IsaKind kind) {
  switch (kind) {
    case IsaKind::kX86_64:  return x86_64_info();
    case IsaKind::kAarch64: return aarch64_info();
  }
  XAR_ASSERT(false);
}

}  // namespace xartrek::isa
