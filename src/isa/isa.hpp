// ISA descriptions for the multi-ISA substrate.
//
// The Popcorn-style migration machinery needs, for each ISA: the register
// file, the calling convention (where arguments/returns/locals live), and
// the data layout.  Two ISAs are modelled -- the two in the paper's
// testbed -- but everything is table-driven so adding RISC-V is a data
// change.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xartrek::isa {

enum class IsaKind { kX86_64, kAarch64 };

[[nodiscard]] constexpr const char* to_string(IsaKind k) {
  switch (k) {
    case IsaKind::kX86_64:  return "x86-64";
    case IsaKind::kAarch64: return "aarch64";
  }
  return "?";
}

/// All ISAs known to the library, in canonical order.
[[nodiscard]] std::vector<IsaKind> all_isas();

/// One architectural register.
struct Register {
  std::string name;
  bool callee_saved = false;
};

/// Primitive data layout facts the state transformer relies on.
struct DataLayout {
  unsigned pointer_bytes = 8;
  unsigned stack_alignment = 16;
  bool little_endian = true;
  /// x86-64 red zone (bytes below rsp usable without adjustment);
  /// aarch64 has none.
  unsigned red_zone_bytes = 0;
};

/// Calling convention facts: which registers carry arguments and results.
struct CallingConvention {
  std::vector<std::string> integer_arg_regs;
  std::string integer_ret_reg;
  std::string stack_pointer;
  std::string frame_pointer;
  std::string link_register;  ///< empty when return addresses live on stack
};

/// A complete ISA description.
struct IsaInfo {
  IsaKind kind;
  std::vector<Register> general_regs;
  CallingConvention cc;
  DataLayout layout;

  /// Average encoded bytes per abstract IR operation; drives the
  /// multi-ISA binary size model (paper Figure 10).
  double code_bytes_per_op = 4.0;

  [[nodiscard]] bool has_register(const std::string& name) const;
  [[nodiscard]] bool is_callee_saved(const std::string& name) const;
};

/// Description of the System V x86-64 ABI subset Xar-Trek needs.
[[nodiscard]] const IsaInfo& x86_64_info();

/// Description of the AAPCS64 subset.
[[nodiscard]] const IsaInfo& aarch64_info();

/// Lookup by kind.
[[nodiscard]] const IsaInfo& info_for(IsaKind kind);

}  // namespace xartrek::isa
