// Cross-ISA symbol alignment.
//
// Popcorn-style multi-ISA binaries place every symbol (function, global,
// static) at the *same virtual address* in each per-ISA image so that
// pointers mean the same thing on every ISA and migrated state needs no
// pointer fixups.  Since per-ISA code sizes differ, the aligner walks
// sections in a canonical order and assigns each symbol the next address
// that satisfies its alignment and fits the largest per-ISA size; the
// smaller images carry padding.  That padding is part of the multi-ISA
// size overhead measured in the paper's Figure 10.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace xartrek::isa {

enum class Section { kText, kRodata, kData, kBss };

[[nodiscard]] constexpr const char* to_string(Section s) {
  switch (s) {
    case Section::kText:   return ".text";
    case Section::kRodata: return ".rodata";
    case Section::kData:   return ".data";
    case Section::kBss:    return ".bss";
  }
  return "?";
}

/// One symbol as emitted for every target ISA.
struct Symbol {
  std::string name;
  Section section = Section::kText;
  std::uint64_t alignment = 16;  ///< power of two
  /// Encoded size per ISA (text differs; data sections usually agree).
  std::map<IsaKind, std::uint64_t> size_by_isa;

  [[nodiscard]] std::uint64_t max_size() const;
  [[nodiscard]] std::uint64_t size_for(IsaKind isa) const;
};

/// The aligner's result: one virtual address per symbol (identical across
/// ISAs) plus per-ISA padding accounting.
struct AlignedLayout {
  std::map<std::string, std::uint64_t> vaddr_of;
  std::map<IsaKind, std::uint64_t> padding_bytes;
  std::uint64_t image_span = 0;  ///< bytes from base to end of last symbol

  [[nodiscard]] std::uint64_t address_of(const std::string& name) const;
};

/// Compute an aligned layout for `symbols` across `isas`.
///
/// Symbols are laid out section by section (text, rodata, data, bss) in
/// the order given within each section, starting at `base`.  Every ISA's
/// image reserves the same [address, address + max_size) window per
/// symbol; the difference between the window and an ISA's own size is
/// charged to that ISA's padding.  Throws on duplicate symbol names or a
/// non-power-of-two alignment.
[[nodiscard]] AlignedLayout align_symbols(const std::vector<Symbol>& symbols,
                                          const std::vector<IsaKind>& isas,
                                          std::uint64_t base = 0x400000);

}  // namespace xartrek::isa
