// The evaluation platform (paper Figure 2 / §4).
//
// One Dell 7920 x86 host (Xeon Bronze 3104, 6 cores), one Cavium
// ThunderX ARM server (96 cores), a Xilinx Alveo U50 card on the host's
// PCIe, and 1 Gbps Ethernet between the servers.  Everything an
// experiment needs is owned here so construction order and lifetimes are
// in one place.
#pragma once

#include <memory>
#include <optional>

#include "common/log.hpp"
#include "fpga/device.hpp"
#include "hw/cpu_cluster.hpp"
#include "hw/link.hpp"
#include "sim/simulation.hpp"
#include "xrt/xrt.hpp"

namespace xartrek::platform {

/// Tunables for non-default testbeds (ablations, scaling studies).
struct TestbedConfig {
  hw::CpuSpec x86 = hw::xeon_bronze_3104();
  hw::CpuSpec arm = hw::cavium_thunderx();
  hw::LinkSpec ethernet = hw::ethernet_1gbps();
  hw::LinkSpec pcie = hw::pcie_gen3();
  fpga::FpgaSpec fpga = fpga::alveo_u50_spec();
  /// Virtualize the card: carve its usable region into PR slots right
  /// after construction.  Unset keeps whole-image residency.
  std::optional<fpga::SlotConfig> fpga_slots;
  /// Shard-aware construction: build every component against this
  /// externally-owned engine (a ShardedSimulation shard picked by the
  /// topology partitioner) instead of a testbed-owned one.  The
  /// testbed then is one *cell* of a partitioned cluster; null keeps
  /// the classic self-contained single-queue testbed.  The engine must
  /// outlive the testbed.
  sim::Simulation* external_sim = nullptr;
  Logger log = {};
};

/// The assembled platform.
class Testbed {
 public:
  explicit Testbed(TestbedConfig cfg = {});

  [[nodiscard]] sim::Simulation& simulation() { return *sim_; }
  [[nodiscard]] hw::CpuCluster& x86() { return *x86_; }
  [[nodiscard]] hw::CpuCluster& arm() { return *arm_; }
  [[nodiscard]] hw::Link& ethernet() { return *ethernet_; }
  [[nodiscard]] hw::Link& pcie() { return *pcie_; }
  [[nodiscard]] fpga::FpgaDevice& fpga() { return *fpga_; }
  [[nodiscard]] xrt::Device& xrt_device() { return *xrt_; }
  [[nodiscard]] const Logger& log() const { return log_; }

  /// Total cores across both servers (102 in the paper; Table 3's
  /// medium/high boundary).
  [[nodiscard]] int total_cores() const {
    return x86_->spec().cores + arm_->spec().cores;
  }

 private:
  Logger log_;
  /// Owned in the classic standalone configuration; empty when the
  /// cell was built against a shard's engine (config.external_sim).
  std::unique_ptr<sim::Simulation> owned_sim_;
  sim::Simulation* sim_;
  std::unique_ptr<hw::CpuCluster> x86_;
  std::unique_ptr<hw::CpuCluster> arm_;
  std::unique_ptr<hw::Link> ethernet_;
  std::unique_ptr<hw::Link> pcie_;
  std::unique_ptr<fpga::FpgaDevice> fpga_;
  std::unique_ptr<xrt::Device> xrt_;
};

}  // namespace xartrek::platform
