#include "platform/testbed.hpp"

#include <utility>

namespace xartrek::platform {

Testbed::Testbed(TestbedConfig cfg) : log_(std::move(cfg.log)) {
  if (cfg.external_sim != nullptr) {
    sim_ = cfg.external_sim;
  } else {
    owned_sim_ = std::make_unique<sim::Simulation>();
    sim_ = owned_sim_.get();
  }
  x86_ = std::make_unique<hw::CpuCluster>(*sim_, cfg.x86);
  arm_ = std::make_unique<hw::CpuCluster>(*sim_, cfg.arm);
  ethernet_ = std::make_unique<hw::Link>(*sim_, cfg.ethernet);
  pcie_ = std::make_unique<hw::Link>(*sim_, cfg.pcie);
  fpga_ = std::make_unique<fpga::FpgaDevice>(*sim_, *pcie_, cfg.fpga, log_);
  if (cfg.fpga_slots.has_value()) fpga_->enable_slots(*cfg.fpga_slots);
  xrt_ = std::make_unique<xrt::Device>(*sim_, *fpga_, *pcie_);
}

}  // namespace xartrek::platform
