// Operator tool: produce, inspect, and reload the step-G threshold
// table artifact.
//
// The estimation tool "outputs a table that describes, for each
// application, the application name, the hardware kernel, the FPGA
// threshold and the ARM threshold" (paper §3.1).  This tool runs step G,
// writes that artifact to disk, reads it back, verifies the run-time
// behaves identically under the reloaded table, and prints the Vitis-
// style synthesis reports for the suite's kernels.
//
// Build & run:  ./build/examples/threshold_tool [output-path]
#include <fstream>
#include <iostream>
#include <sstream>

#include "apps/benchmark_spec.hpp"
#include "exp/experiment.hpp"
#include "exp/threshold_estimator.hpp"
#include "hls/report.hpp"
#include "runtime/threshold_table_io.hpp"

int main(int argc, char** argv) {
  using namespace xartrek;
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/xartrek_thresholds.txt";

  const auto specs = apps::paper_benchmarks();

  // Step G, then persist the artifact.
  const auto estimation = exp::ThresholdEstimator().estimate(specs);
  const std::string text =
      runtime::serialize_threshold_table(estimation.table);
  {
    std::ofstream out(path);
    out << text;
  }
  std::cout << "== Step-G artifact written to " << path << " ==\n\n"
            << text << "\n";

  // Reload and prove the run-time behaves identically.
  std::ifstream in(path);
  const auto reloaded = runtime::parse_threshold_table(in);

  auto placement_under = [&](const runtime::ThresholdTable& table,
                             const std::string& app, int background) {
    exp::ExperimentOptions options;
    options.mode = apps::SystemMode::kXarTrek;
    exp::Experiment exp(specs, table, options);
    exp.warm_fpga_for(app);
    exp.add_background_load(background);
    exp.simulation().run_until(exp.simulation().now() + Duration::ms(50));
    exp.launch(app);
    exp.run_until_complete(1);
    return exp.results().front().func_target;
  };

  bool identical = true;
  for (const auto& spec : specs) {
    for (int background : {0, 20, 60}) {
      const auto a = placement_under(estimation.table, spec.name,
                                     background);
      const auto b = placement_under(reloaded, spec.name, background);
      if (a != b) identical = false;
      std::cout << spec.name << " @load " << background + 1 << ": "
                << to_string(a) << (a == b ? "" : "  <-- MISMATCH") << "\n";
    }
  }
  std::cout << (identical
                    ? "\nreloaded table reproduces every placement.\n\n"
                    : "\nERROR: placements diverged after reload!\n\n");

  // Synthesis reports for the suite (step-D artifacts).
  const compiler::XarCompiler xar;
  const auto suite = xar.compile(apps::make_profile_spec(specs),
                                 apps::make_irs(specs),
                                 apps::make_kernel_profiles(specs));
  for (const auto& app : suite.apps) {
    std::cout << hls::utilization_report(app.xos[0],
                                         fpga::alveo_u50_spec())
              << "\n";
  }
  return identical ? 0 : 1;
}
