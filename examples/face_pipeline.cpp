// Functional face-detection pipeline: generates synthetic PGM scenes,
// runs the real Viola-Jones-style detector (the software body of the
// KNL_HW_FD320 kernel), and reports recall/precision against the
// planted ground truth -- then runs the same workload as a throughput
// app on the simulated testbed under Xar-Trek.
//
// This example demonstrates that the "selected function" is a genuine
// algorithm: the hardware path computes the same detections; only its
// latency comes from the HLS model.
//
// Build & run:  ./build/examples/face_pipeline
#include <fstream>
#include <iostream>

#include "apps/benchmark_spec.hpp"
#include "apps/multi_image_app.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/threshold_estimator.hpp"
#include "workloads/face_detect.hpp"
#include "workloads/image.hpp"

int main() {
  using namespace xartrek;
  std::cout << "== Face-detection pipeline (functional + simulated) ==\n\n";

  // --- Functional part: detect planted faces in synthetic scenes -------
  Rng rng(2021);
  int total_faces = 0;
  int matched = 0;
  int detections_total = 0;
  int detections_near_truth = 0;

  TextTable table("Detection quality on synthetic 320x240 scenes");
  table.set_header({"scene", "planted", "detected", "matched"});
  for (int scene_id = 0; scene_id < 8; ++scene_id) {
    const auto scene =
        workloads::make_scene(rng, 320, 240, 2 + scene_id % 3, 26, 60);
    const auto detections = workloads::detect_faces(scene.image);
    int scene_matched = 0;
    for (const auto& f : scene.faces) {
      const workloads::Detection truth{f.x, f.y, f.size, 0.0};
      for (const auto& d : detections) {
        if (workloads::detection_iou(truth, d) > 0.3) {
          ++scene_matched;
          break;
        }
      }
    }
    for (const auto& d : detections) {
      for (const auto& f : scene.faces) {
        if (workloads::detection_iou(
                workloads::Detection{f.x, f.y, f.size, 0.0}, d) > 0.1) {
          ++detections_near_truth;
          break;
        }
      }
    }
    total_faces += static_cast<int>(scene.faces.size());
    matched += scene_matched;
    detections_total += static_cast<int>(detections.size());
    table.add_row({std::to_string(scene_id),
                   std::to_string(scene.faces.size()),
                   std::to_string(detections.size()),
                   std::to_string(scene_matched)});

    if (scene_id == 0) {
      std::ofstream pgm("/tmp/xartrek_scene0.pgm", std::ios::binary);
      workloads::write_pgm(pgm, scene.image);
    }
  }
  std::cout << table.render();
  std::cout << "Recall: " << matched << "/" << total_faces
            << ", precision proxy: " << detections_near_truth << "/"
            << detections_total
            << " (scene 0 written to /tmp/xartrek_scene0.pgm)\n\n";

  // --- Simulated part: the same app as a throughput workload -----------
  const auto specs = apps::paper_benchmarks();
  const auto estimation = exp::ThresholdEstimator().estimate(specs);

  for (int background : {0, 50}) {
    exp::ExperimentOptions options;
    options.mode = apps::SystemMode::kXarTrek;
    exp::Experiment exp(specs, estimation.table, options);
    exp.add_background_load(background);
    exp.simulation().run_until(exp.simulation().now() + Duration::ms(50));

    apps::MultiImageConfig config;
    config.target_images = 1000;
    config.deadline = Duration::seconds(60);
    bool done = false;
    apps::MultiImageResult result;
    apps::MultiImageFaceApp::launch(exp.env(), exp.spec("facedet320"),
                                    apps::SystemMode::kXarTrek, config,
                                    [&](const apps::MultiImageResult& r) {
                                      done = true;
                                      result = r;
                                    });
    const TimePoint horizon =
        exp.simulation().now() + Duration::minutes(5);
    while (!done && exp.simulation().step_one(horizon)) {
    }
    std::cout << "Throughput with " << background << " background procs: "
              << result.images_processed << " images / 60 s ("
              << TextTable::num(result.images_per_second(), 1) << "/s)\n";
  }
  std::cout << "\nAt 50 background processes the scheduler switched the\n"
               "per-image calls to the FPGA kernel, sustaining throughput\n"
               "while the x86 cores were saturated (paper Figure 6).\n";
  return 0;
}
