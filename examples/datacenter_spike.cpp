// Datacenter workload spike: a multi-tenant x86 server hosting five
// tenant applications gets hit by a burst of background jobs.  The
// example narrates every placement decision the Xar-Trek scheduler
// makes before, during and after the spike (the Figure 4/5 scenario,
// one run, verbose).
//
// Build & run:  ./build/examples/datacenter_spike
#include <chrono>
#include <iostream>
#include <vector>

#include "apps/application.hpp"
#include "apps/benchmark_spec.hpp"
#include "apps/load_generator.hpp"
#include "common/table.hpp"
#include "exp/cluster.hpp"
#include "exp/experiment.hpp"
#include "exp/threshold_estimator.hpp"

int main() {
  using namespace xartrek;
  std::cout << "== Datacenter spike scenario ==\n\n";

  const auto specs = apps::paper_benchmarks();
  const auto estimation = exp::ThresholdEstimator().estimate(specs);

  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::Experiment exp(specs, estimation.table, options);
  auto& sim = exp.simulation();

  const std::vector<std::string> tenants = {
      "facedet320", "facedet640", "digit500", "digit2000", "cg_a"};

  TextTable log("Timeline");
  log.set_header({"t (s)", "event", "x86 load", "detail"});
  auto note = [&](const std::string& event, const std::string& detail) {
    log.add_row({TextTable::num(sim.now().to_ms() / 1000.0, 1), event,
                 std::to_string(exp.testbed().x86().load()), detail});
  };

  // Phase 1: calm -- each tenant runs once on an idle server.
  note("phase 1", "idle server, tenants arrive");
  for (const auto& t : tenants) exp.launch(t);
  exp.run_until_complete(tenants.size());
  for (const auto& r : exp.results()) {
    note("tenant done",
         r.app + " on " + to_string(r.func_target) + " in " +
             TextTable::num(r.elapsed().to_ms(), 0) + " ms");
  }

  // Phase 2: spike -- 80 batch jobs land on the host.
  exp.add_background_load(80);
  sim.run_until(sim.now() + Duration::ms(100));
  note("phase 2", "80-process spike lands");
  const std::size_t before = exp.completed_apps();
  for (const auto& t : tenants) exp.launch(t);
  exp.run_until_complete(before + tenants.size());
  for (std::size_t i = before; i < exp.results().size(); ++i) {
    const auto& r = exp.results()[i];
    note("tenant done",
         r.app + " on " + to_string(r.func_target) + " in " +
             TextTable::num(r.elapsed().to_ms(), 0) + " ms");
  }

  // Phase 3: spike drains.
  exp.set_background_load(0);
  sim.run_until(sim.now() + Duration::ms(100));
  note("phase 3", "spike drains, server idle again");
  const std::size_t before3 = exp.completed_apps();
  for (const auto& t : tenants) exp.launch(t);
  exp.run_until_complete(before3 + tenants.size());
  for (std::size_t i = before3; i < exp.results().size(); ++i) {
    const auto& r = exp.results()[i];
    note("tenant done",
         r.app + " on " + to_string(r.func_target) + " in " +
             TextTable::num(r.elapsed().to_ms(), 0) + " ms");
  }

  // Phase 4: hyperscale burst -- 100,000 concurrent batch jobs land on
  // the host (the "millions of users" regime).  The virtual-time
  // processor-sharing core keeps every submit/cancel/complete at
  // O(log n), so the scheduler still answers placement requests
  // immediately; all five tenants escape the saturated x86 server.
  {
    const auto wall_start = std::chrono::steady_clock::now();
    exp.add_background_load(100'000);
    sim.run_until(sim.now() + Duration::ms(100));
    note("phase 4", "100k-concurrent-job spike lands");
    const std::size_t before4 = exp.completed_apps();
    for (const auto& t : tenants) exp.launch(t);
    exp.run_until_complete(before4 + tenants.size());
    for (std::size_t i = before4; i < exp.results().size(); ++i) {
      const auto& r = exp.results()[i];
      note("tenant done",
           r.app + " on " + to_string(r.func_target) + " in " +
               TextTable::num(r.elapsed().to_ms(), 0) + " ms");
    }
    // Tear the burst down: 100k cancellations through the same
    // O(log n) path.
    exp.set_background_load(0);
    sim.run_until(sim.now() + Duration::ms(100));
    note("phase 4 end", "burst cancelled, server idle again");
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    std::cout << "[phase 4] 100k-job spike simulated in " << wall_s
              << " s wall time\n\n";
  }

  // Phase 5: scale-out -- four datacenter cells as a declarative
  // ClusterSpec.  Each cell is a full testbed (tenants, scheduler,
  // FPGA) living on its own shard of the epoch-synchronized engine;
  // the topology partitioner derives the shard map, auto-picks the
  // largest legal epoch from the inter-cell link latency, and emits
  // the cross-shard wiring that used to be hand-rolled lane plumbing
  // right here.  Every cell takes its own spike while jobs hand off
  // around the ring.
  {
    constexpr std::size_t kCells = 4;
    constexpr int kSpikePerCell = 120;
    exp::ClusterSpec cluster_spec;
    cluster_spec.cells = kCells;
    cluster_spec.parallel = true;
    exp::ClusterExperiment cluster(specs, estimation.table, cluster_spec,
                                   options);

    // Every 25 ms each cell ships a 256 KiB job image to its ring
    // neighbor over the derived inter-cell channel.
    struct HandoffPump {
      exp::ClusterExperiment* cluster = nullptr;
      std::size_t cell = 0;
      int remaining = 0;
      void fire() {
        cluster->handoff(cell, 256 * 1024, [] {});
        if (--remaining > 0) {
          cluster->cell(cell).simulation().schedule_in(
              Duration::ms(25.0), [this] { fire(); });
        }
      }
    };
    std::vector<HandoffPump> pumps(kCells);
    for (std::size_t c = 0; c < kCells; ++c) {
      pumps[c] = HandoffPump{&cluster, c, 200};
      HandoffPump* pump = &pumps[c];
      cluster.cell(c).simulation().schedule_in(Duration::ms(25.0),
                                               [pump] { pump->fire(); });
    }

    const auto wall_start = std::chrono::steady_clock::now();
    // Micro-churn batch jobs: same per-cell load figure as MG-B loops
    // (the scheduler samples the process count, not the demand), but
    // each run completes in milliseconds, so the cells' queues churn
    // hundreds of thousands of events while the tenants run.
    apps::ShardedLoadGenerator::Options churn;
    churn.run_demand = Duration::ms(2.0);
    churn.demand_jitter = 0.5;
    cluster.set_background_load(kCells * kSpikePerCell, churn);
    for (std::size_t c = 0; c < kCells; ++c) {
      for (const auto& t : tenants) cluster.launch(c, t);
    }
    cluster.run_until_complete(kCells * tenants.size());
    cluster.set_background_load(0);
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

    const std::uint64_t events =
        cluster.engine().engine().executed_events();
    double aggregate = 0.0;
    int escaped = 0;
    for (std::size_t c = 0; c < kCells; ++c) {
      const auto& st = cluster.engine().engine().stats(
          static_cast<sim::ShardId>(c));
      if (st.busy_seconds > 0.0) {
        aggregate += static_cast<double>(st.executed) / st.busy_seconds;
      }
      for (const auto& r : cluster.results(c)) {
        escaped += r.func_target != runtime::Target::kX86;
      }
    }
    note("phase 5", std::to_string(events) + " events across " +
                        std::to_string(kCells) + " cells");
    std::cout << "[phase 5] " << kCells << "-cell cluster (epoch "
              << cluster.engine().plan().epoch << "): "
              << kCells * tenants.size() << " tenants done, " << escaped
              << " escaped x86, " << cluster.handoffs()
              << " ring handoffs, " << events << " events in " << wall_s
              << " s wall (" << aggregate / 1e6
              << " M events/s aggregate per-core capacity)\n\n";
  }

  // Phase 6: the million-user sweep -- 1,000,000 concurrent background
  // jobs spread over the four cells through the sharded load
  // generator.  Attach/detach bookkeeping is batched per shard (one
  // process-table update and one pool reservation per cell), so the
  // burst costs one O(log n) submit per job instead of funneling a
  // million per-process updates through one CpuCluster.
  {
    constexpr std::size_t kCells = 4;
    constexpr std::uint64_t kJobs = 1'000'000;
    exp::ClusterSpec cluster_spec;
    cluster_spec.cells = kCells;
    cluster_spec.parallel = true;
    exp::ClusterExperiment cluster(specs, estimation.table, cluster_spec,
                                   options);

    auto wall_start = std::chrono::steady_clock::now();
    cluster.set_background_load(kJobs);
    const double attach_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                wall_start)
                                .count();
    cluster.run_for(Duration::ms(100.0));
    note("phase 6", std::to_string(kJobs) + " concurrent jobs across " +
                        std::to_string(kCells) + " cells");

    // All tenants still get placement decisions instantly at 250k
    // resident jobs per cell -- and all of them escape the x86 servers.
    for (std::size_t c = 0; c < kCells; ++c) {
      for (const auto& t : tenants) cluster.launch(c, t);
    }
    cluster.run_until_complete(kCells * tenants.size());
    int escaped = 0;
    std::size_t done = 0;
    for (std::size_t c = 0; c < kCells; ++c) {
      for (const auto& r : cluster.results(c)) {
        ++done;
        escaped += r.func_target != runtime::Target::kX86;
      }
    }

    wall_start = std::chrono::steady_clock::now();
    cluster.set_background_load(0);
    const double detach_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                wall_start)
                                .count();
    note("phase 6 end", "burst cancelled, cells idle again");
    std::cout << "[phase 6] " << kJobs << " jobs attached in " << attach_s
              << " s (" << static_cast<double>(kJobs) / attach_s / 1e6
              << " M jobs/s), detached in " << detach_s << " s; " << done
              << " tenants completed under load, " << escaped
              << " escaped x86\n\n";
  }

  std::cout << log.render() << "\n";
  std::cout << "During the spike the FPGA-profitable tenants moved to their\n"
               "hardware kernels and CG-A escaped to the ARM server; after\n"
               "the spike everything returned to plain x86 execution.\n";

  const auto& stats = exp.server().stats();
  std::cout << "\nScheduler decisions: " << stats.requests << " requests -> "
            << stats.to_x86 << " x86, " << stats.to_arm << " ARM, "
            << stats.to_fpga << " FPGA; " << stats.reconfigurations_started
            << " FPGA reconfiguration(s) started.\n";
  return 0;
}
