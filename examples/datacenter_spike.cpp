// Datacenter workload spike: a multi-tenant x86 server hosting five
// tenant applications gets hit by a burst of background jobs.  The
// example narrates every placement decision the Xar-Trek scheduler
// makes before, during and after the spike (the Figure 4/5 scenario,
// one run, verbose).
//
// Build & run:  ./build/examples/datacenter_spike
#include <chrono>
#include <iostream>

#include "apps/application.hpp"
#include "apps/benchmark_spec.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/threshold_estimator.hpp"

int main() {
  using namespace xartrek;
  std::cout << "== Datacenter spike scenario ==\n\n";

  const auto specs = apps::paper_benchmarks();
  const auto estimation = exp::ThresholdEstimator().estimate(specs);

  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::Experiment exp(specs, estimation.table, options);
  auto& sim = exp.simulation();

  const std::vector<std::string> tenants = {
      "facedet320", "facedet640", "digit500", "digit2000", "cg_a"};

  TextTable log("Timeline");
  log.set_header({"t (s)", "event", "x86 load", "detail"});
  auto note = [&](const std::string& event, const std::string& detail) {
    log.add_row({TextTable::num(sim.now().to_ms() / 1000.0, 1), event,
                 std::to_string(exp.testbed().x86().load()), detail});
  };

  // Phase 1: calm -- each tenant runs once on an idle server.
  note("phase 1", "idle server, tenants arrive");
  for (const auto& t : tenants) exp.launch(t);
  exp.run_until_complete(tenants.size());
  for (const auto& r : exp.results()) {
    note("tenant done",
         r.app + " on " + to_string(r.func_target) + " in " +
             TextTable::num(r.elapsed().to_ms(), 0) + " ms");
  }

  // Phase 2: spike -- 80 batch jobs land on the host.
  exp.add_background_load(80);
  sim.run_until(sim.now() + Duration::ms(100));
  note("phase 2", "80-process spike lands");
  const std::size_t before = exp.completed_apps();
  for (const auto& t : tenants) exp.launch(t);
  exp.run_until_complete(before + tenants.size());
  for (std::size_t i = before; i < exp.results().size(); ++i) {
    const auto& r = exp.results()[i];
    note("tenant done",
         r.app + " on " + to_string(r.func_target) + " in " +
             TextTable::num(r.elapsed().to_ms(), 0) + " ms");
  }

  // Phase 3: spike drains.
  exp.set_background_load(0);
  sim.run_until(sim.now() + Duration::ms(100));
  note("phase 3", "spike drains, server idle again");
  const std::size_t before3 = exp.completed_apps();
  for (const auto& t : tenants) exp.launch(t);
  exp.run_until_complete(before3 + tenants.size());
  for (std::size_t i = before3; i < exp.results().size(); ++i) {
    const auto& r = exp.results()[i];
    note("tenant done",
         r.app + " on " + to_string(r.func_target) + " in " +
             TextTable::num(r.elapsed().to_ms(), 0) + " ms");
  }

  // Phase 4: hyperscale burst -- 100,000 concurrent batch jobs land on
  // the host (the "millions of users" regime).  The virtual-time
  // processor-sharing core keeps every submit/cancel/complete at
  // O(log n), so the scheduler still answers placement requests
  // immediately; all five tenants escape the saturated x86 server.
  {
    const auto wall_start = std::chrono::steady_clock::now();
    exp.add_background_load(100'000);
    sim.run_until(sim.now() + Duration::ms(100));
    note("phase 4", "100k-concurrent-job spike lands");
    const std::size_t before4 = exp.completed_apps();
    for (const auto& t : tenants) exp.launch(t);
    exp.run_until_complete(before4 + tenants.size());
    for (std::size_t i = before4; i < exp.results().size(); ++i) {
      const auto& r = exp.results()[i];
      note("tenant done",
           r.app + " on " + to_string(r.func_target) + " in " +
               TextTable::num(r.elapsed().to_ms(), 0) + " ms");
    }
    // Tear the burst down: 100k cancellations through the same
    // O(log n) path.
    exp.set_background_load(0);
    sim.run_until(sim.now() + Duration::ms(100));
    note("phase 4 end", "burst cancelled, server idle again");
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    std::cout << "[phase 4] 100k-job spike simulated in " << wall_s
              << " s wall time\n\n";
  }

  std::cout << log.render() << "\n";
  std::cout << "During the spike the FPGA-profitable tenants moved to their\n"
               "hardware kernels and CG-A escaped to the ARM server; after\n"
               "the spike everything returned to plain x86 execution.\n";

  const auto& stats = exp.server().stats();
  std::cout << "\nScheduler decisions: " << stats.requests << " requests -> "
            << stats.to_x86 << " x86, " << stats.to_arm << " ARM, "
            << stats.to_fpga << " FPGA; " << stats.reconfigurations_started
            << " FPGA reconfiguration(s) started.\n";
  return 0;
}
