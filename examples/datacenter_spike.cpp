// Datacenter workload spike: a multi-tenant x86 server hosting five
// tenant applications gets hit by a burst of background jobs.  The
// example narrates every placement decision the Xar-Trek scheduler
// makes before, during and after the spike (the Figure 4/5 scenario,
// one run, verbose).
//
// Build & run:  ./build/examples/datacenter_spike
//
// XARTREK_CHAOS_ONLY=1 runs just the chaos phase (the CHAOS-labelled
// CI smoke entry), exiting non-zero if any resilience invariant breaks.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include <string>

#include "apps/application.hpp"
#include "apps/benchmark_spec.hpp"
#include "apps/load_generator.hpp"
#include "common/table.hpp"
#include "exp/cluster.hpp"
#include "exp/experiment.hpp"
#include "exp/threshold_estimator.hpp"
#include "obs/export.hpp"
#include "sim/fault.hpp"

namespace {

// XARTREK_OBS_EXPORT=<dir> turns on tracing for the chaos/gray phases
// and writes <dir>/{chaos,gray}_trace.json (Perfetto-loadable),
// <dir>/{chaos,gray}_metrics.json (full registry snapshot) and
// <dir>/{chaos,gray}_metrics_delta.txt (the run's per-phase delta:
// counters subtract, gauges keep the later value).
const char* obs_export_dir() { return std::getenv("XARTREK_OBS_EXPORT"); }

void export_obs(xartrek::exp::ClusterExperiment& cluster,
                const std::string& phase,
                const xartrek::obs::Snapshot& before) {
  using namespace xartrek;
  const char* dir = obs_export_dir();
  if (dir == nullptr) return;
  const std::string base = std::string(dir) + "/" + phase;
  const obs::Snapshot after = cluster.registry().snapshot();
  bool ok = obs::write_file(base + "_metrics.json", obs::metrics_json(after));
  ok = obs::write_file(base + "_metrics_delta.txt",
                       obs::metrics_text(after.delta(before))) &&
       ok;
  if (cluster.tracer() != nullptr) {
    ok = obs::write_file(base + "_trace.json",
                         obs::perfetto_trace_json(*cluster.tracer())) &&
         ok;
    std::cout << "[" << phase << "] exported "
              << cluster.tracer()->span_count() << " spans and "
              << cluster.registry().size() << " metrics to " << base
              << "_*\n";
  }
  if (!ok) {
    std::cout << "[" << phase << "] WARN: observability export to " << dir
              << " failed\n";
  }
}

// Chaos phase: a four-cell cluster takes a spike while cell 1 dies and
// the ring link its jobs drain over is partitioned.  The invariants --
// the whole point of the fault machinery -- are checked here and the
// phase exits non-zero on violation:
//   * conservation: every submitted job completes exactly once;
//   * bounded tail: p99 job latency stays under a fixed budget even
//     with a cell dead and checkpoints parked behind the partition.
int run_chaos_phase() {
  using namespace xartrek;
  const auto specs = apps::paper_benchmarks();
  const auto estimation = exp::ThresholdEstimator().estimate(specs);
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;

  constexpr std::size_t kCells = 4;
  exp::ClusterSpec cluster_spec;
  cluster_spec.cells = kCells;
  cluster_spec.parallel = true;
  exp::ClusterExperiment cluster(specs, estimation.table, cluster_spec,
                                 options);
  if (obs_export_dir() != nullptr) cluster.enable_tracing();
  const obs::Snapshot obs_before = cluster.registry().snapshot();

  // Mid-spike churn load so the faults land on busy cells.
  apps::ShardedLoadGenerator::Options churn;
  churn.run_demand = Duration::ms(2.0);
  churn.demand_jitter = 0.5;
  cluster.set_background_load(kCells * 60, churn);

  const std::vector<std::string> jobs = {"facedet320", "digit500",
                                         "facedet640"};
  for (std::size_t c = 0; c < kCells; ++c) {
    for (const auto& j : jobs) cluster.submit(c, j);
  }

  // The chaos: ring link 1 (cell 1 -> cell 2, the dying cell's drain
  // path) partitions at 40 ms, cell 1 dies at 50 ms -- its in-flight
  // jobs checkpoint and park on the downed link -- and the partition
  // heals at 160 ms, releasing the drained checkpoints to cell 2.
  sim::FaultPlan plan;
  plan.add({sim::FaultEvent::Kind::kLinkDown, TimePoint::at_ms(40.0), 1});
  plan.add({sim::FaultEvent::Kind::kCellKill, TimePoint::at_ms(50.0), 1});
  plan.add({sim::FaultEvent::Kind::kLinkUp, TimePoint::at_ms(160.0), 1});
  cluster.apply_fault_plan(plan);

  const bool all_done =
      cluster.run_until_jobs_complete(Duration::minutes(5));
  cluster.set_background_load(0);
  export_obs(cluster, "chaos", obs_before);

  const auto stats = cluster.job_stats();
  std::cout << "[chaos] " << stats.submitted << " jobs submitted, "
            << stats.completed << " completed, " << stats.drained
            << " checkpoint-drained, " << stats.retries
            << " backoff retries; p99 "
            << TextTable::num(stats.p99_latency_ms, 0) << " ms, max "
            << TextTable::num(stats.max_latency_ms, 0) << " ms\n";

  int failures = 0;
  if (!all_done || stats.completed != stats.submitted) {
    std::cout << "[chaos] FAIL: completion-count conservation violated ("
              << stats.completed << " != " << stats.submitted << ")\n";
    ++failures;
  }
  if (!cluster.cell_dead(1) || stats.drained == 0) {
    std::cout << "[chaos] FAIL: the kill drained nothing\n";
    ++failures;
  }
  constexpr double kP99BudgetMs = 10'000.0;
  if (!(stats.p99_latency_ms > 0.0 &&
        stats.p99_latency_ms <= kP99BudgetMs)) {
    std::cout << "[chaos] FAIL: p99 " << stats.p99_latency_ms
              << " ms outside (0, " << kP99BudgetMs << "] budget\n";
    ++failures;
  }
  if (failures == 0) {
    std::cout << "[chaos] invariants held: no job lost, tail bounded\n\n";
  }
  return failures == 0 ? 0 : 1;
}

// Gray-failure storm: nothing dies cleanly.  Cell 0's CPUs crawl at
// quarter speed, ring link 1 inflates latency and drops frames, cell
// 2's reconfiguration port flips a coin per programming, cell 1's DSM
// corrupts drain payloads -- and cell 1 is killed mid-storm so its
// checkpoints must cross the degraded, corrupting link.  The reliability
// layer (frame checksums, reliable drain channel, circuit breaker) has
// to absorb all of it:
//   * conservation: every submitted job still completes exactly once;
//   * detection: the storm is *seen* (retries or checksum catches, and
//     at least one breaker trip on the slowed cell);
//   * bounded tail: p99 stays under the same budget as hard faults.
int run_gray_phase() {
  using namespace xartrek;
  const auto specs = apps::paper_benchmarks();
  const auto estimation = exp::ThresholdEstimator().estimate(specs);
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;

  constexpr std::size_t kCells = 4;
  exp::ClusterSpec cluster_spec;
  cluster_spec.cells = kCells;
  cluster_spec.parallel = true;
  exp::ClusterExperiment cluster(specs, estimation.table, cluster_spec,
                                 options);
  if (obs_export_dir() != nullptr) cluster.enable_tracing();
  const obs::Snapshot obs_before = cluster.registry().snapshot();

  apps::ShardedLoadGenerator::Options churn;
  churn.run_demand = Duration::ms(2.0);
  churn.demand_jitter = 0.5;
  cluster.set_background_load(kCells * 60, churn);

  const std::vector<std::string> jobs = {"facedet320", "digit500",
                                         "facedet640"};
  for (std::size_t c = 0; c < kCells; ++c) {
    for (const auto& j : jobs) cluster.submit(c, j);
  }

  sim::FaultPlan plan;
  plan.add({sim::FaultEvent::Kind::kCellSlow, TimePoint::at_ms(20.0), 0,
            0.25, TimePoint::at_ms(120.0)});
  plan.add({sim::FaultEvent::Kind::kLinkDegraded, TimePoint::at_ms(30.0), 1,
            0.3, TimePoint::at_ms(200.0)});
  plan.add({sim::FaultEvent::Kind::kPortFlaky, TimePoint::at_ms(20.0), 2,
            0.5, TimePoint::at_ms(250.0)});
  plan.add({sim::FaultEvent::Kind::kDsmCorrupt, TimePoint::at_ms(30.0), 1,
            0.5, TimePoint::at_ms(200.0)});
  plan.add({sim::FaultEvent::Kind::kCellKill, TimePoint::at_ms(50.0), 1});
  cluster.apply_fault_plan(plan);

  const bool all_done =
      cluster.run_until_jobs_complete(Duration::minutes(5));
  cluster.set_background_load(0);
  export_obs(cluster, "gray", obs_before);

  const auto stats = cluster.job_stats();
  std::cout << "[gray] " << stats.submitted << " jobs submitted, "
            << stats.completed << " completed, " << stats.drained
            << " drained; " << stats.channel_retries << " channel retries, "
            << stats.corrupt_recovered << " checksum catches, "
            << stats.link_drops << " frames dropped, "
            << stats.slow_replies << " slow replies, "
            << stats.breaker_trips << " breaker trips ("
            << stats.breaker_closes << " recovered); p99 "
            << TextTable::num(stats.p99_latency_ms, 0) << " ms, max "
            << TextTable::num(stats.max_latency_ms, 0) << " ms\n";

  int failures = 0;
  if (!all_done || stats.completed != stats.submitted) {
    std::cout << "[gray] FAIL: completion-count conservation violated ("
              << stats.completed << " != " << stats.submitted << ")\n";
    ++failures;
  }
  if (stats.channel_retries + stats.corrupt_recovered == 0 &&
      stats.link_drops == 0) {
    std::cout << "[gray] FAIL: the storm left no reliability-layer "
                 "fingerprints (nothing dropped, corrupted, or retried)\n";
    ++failures;
  }
  if (stats.breaker_trips == 0) {
    std::cout << "[gray] FAIL: the slowed cell never tripped its "
                 "circuit breaker\n";
    ++failures;
  }
  constexpr double kP99BudgetMs = 10'000.0;
  if (!(stats.p99_latency_ms > 0.0 &&
        stats.p99_latency_ms <= kP99BudgetMs)) {
    std::cout << "[gray] FAIL: p99 " << stats.p99_latency_ms
              << " ms outside (0, " << kP99BudgetMs << "] budget\n";
    ++failures;
  }
  if (failures == 0) {
    std::cout << "[gray] invariants held: storm absorbed, no job lost, "
                 "tail bounded\n\n";
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main() {
  using namespace xartrek;
  if (std::getenv("XARTREK_CHAOS_ONLY") != nullptr) {
    std::cout << "== Datacenter spike: chaos phase only ==\n\n";
    return run_chaos_phase() + run_gray_phase();
  }
  std::cout << "== Datacenter spike scenario ==\n\n";

  const auto specs = apps::paper_benchmarks();
  const auto estimation = exp::ThresholdEstimator().estimate(specs);

  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::Experiment exp(specs, estimation.table, options);
  auto& sim = exp.simulation();

  const std::vector<std::string> tenants = {
      "facedet320", "facedet640", "digit500", "digit2000", "cg_a"};

  TextTable log("Timeline");
  log.set_header({"t (s)", "event", "x86 load", "detail"});
  auto note = [&](const std::string& event, const std::string& detail) {
    log.add_row({TextTable::num(sim.now().to_ms() / 1000.0, 1), event,
                 std::to_string(exp.testbed().x86().load()), detail});
  };

  // Phase 1: calm -- each tenant runs once on an idle server.
  note("phase 1", "idle server, tenants arrive");
  for (const auto& t : tenants) exp.launch(t);
  exp.run_until_complete(tenants.size());
  for (const auto& r : exp.results()) {
    note("tenant done",
         r.app + " on " + to_string(r.func_target) + " in " +
             TextTable::num(r.elapsed().to_ms(), 0) + " ms");
  }

  // Phase 2: spike -- 80 batch jobs land on the host.
  exp.add_background_load(80);
  sim.run_until(sim.now() + Duration::ms(100));
  note("phase 2", "80-process spike lands");
  const std::size_t before = exp.completed_apps();
  for (const auto& t : tenants) exp.launch(t);
  exp.run_until_complete(before + tenants.size());
  for (std::size_t i = before; i < exp.results().size(); ++i) {
    const auto& r = exp.results()[i];
    note("tenant done",
         r.app + " on " + to_string(r.func_target) + " in " +
             TextTable::num(r.elapsed().to_ms(), 0) + " ms");
  }

  // Phase 3: spike drains.
  exp.set_background_load(0);
  sim.run_until(sim.now() + Duration::ms(100));
  note("phase 3", "spike drains, server idle again");
  const std::size_t before3 = exp.completed_apps();
  for (const auto& t : tenants) exp.launch(t);
  exp.run_until_complete(before3 + tenants.size());
  for (std::size_t i = before3; i < exp.results().size(); ++i) {
    const auto& r = exp.results()[i];
    note("tenant done",
         r.app + " on " + to_string(r.func_target) + " in " +
             TextTable::num(r.elapsed().to_ms(), 0) + " ms");
  }

  // Phase 4: hyperscale burst -- 100,000 concurrent batch jobs land on
  // the host (the "millions of users" regime).  The virtual-time
  // processor-sharing core keeps every submit/cancel/complete at
  // O(log n), so the scheduler still answers placement requests
  // immediately; all five tenants escape the saturated x86 server.
  {
    const auto wall_start = std::chrono::steady_clock::now();
    exp.add_background_load(100'000);
    sim.run_until(sim.now() + Duration::ms(100));
    note("phase 4", "100k-concurrent-job spike lands");
    const std::size_t before4 = exp.completed_apps();
    for (const auto& t : tenants) exp.launch(t);
    exp.run_until_complete(before4 + tenants.size());
    for (std::size_t i = before4; i < exp.results().size(); ++i) {
      const auto& r = exp.results()[i];
      note("tenant done",
           r.app + " on " + to_string(r.func_target) + " in " +
               TextTable::num(r.elapsed().to_ms(), 0) + " ms");
    }
    // Tear the burst down: 100k cancellations through the same
    // O(log n) path.
    exp.set_background_load(0);
    sim.run_until(sim.now() + Duration::ms(100));
    note("phase 4 end", "burst cancelled, server idle again");
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    std::cout << "[phase 4] 100k-job spike simulated in " << wall_s
              << " s wall time\n\n";
  }

  // Phase 5: scale-out -- four datacenter cells as a declarative
  // ClusterSpec.  Each cell is a full testbed (tenants, scheduler,
  // FPGA) living on its own shard of the epoch-synchronized engine;
  // the topology partitioner derives the shard map, auto-picks the
  // largest legal epoch from the inter-cell link latency, and emits
  // the cross-shard wiring that used to be hand-rolled lane plumbing
  // right here.  Every cell takes its own spike while jobs hand off
  // around the ring.
  {
    constexpr std::size_t kCells = 4;
    constexpr int kSpikePerCell = 120;
    exp::ClusterSpec cluster_spec;
    cluster_spec.cells = kCells;
    cluster_spec.parallel = true;
    exp::ClusterExperiment cluster(specs, estimation.table, cluster_spec,
                                   options);

    // Every 25 ms each cell ships a 256 KiB job image to its ring
    // neighbor over the derived inter-cell channel.
    struct HandoffPump {
      exp::ClusterExperiment* cluster = nullptr;
      std::size_t cell = 0;
      int remaining = 0;
      void fire() {
        cluster->handoff(cell, 256 * 1024, [] {});
        if (--remaining > 0) {
          cluster->cell(cell).simulation().schedule_in(
              Duration::ms(25.0), [this] { fire(); });
        }
      }
    };
    std::vector<HandoffPump> pumps(kCells);
    for (std::size_t c = 0; c < kCells; ++c) {
      pumps[c] = HandoffPump{&cluster, c, 200};
      HandoffPump* pump = &pumps[c];
      cluster.cell(c).simulation().schedule_in(Duration::ms(25.0),
                                               [pump] { pump->fire(); });
    }

    const auto wall_start = std::chrono::steady_clock::now();
    // Micro-churn batch jobs: same per-cell load figure as MG-B loops
    // (the scheduler samples the process count, not the demand), but
    // each run completes in milliseconds, so the cells' queues churn
    // hundreds of thousands of events while the tenants run.
    apps::ShardedLoadGenerator::Options churn;
    churn.run_demand = Duration::ms(2.0);
    churn.demand_jitter = 0.5;
    cluster.set_background_load(kCells * kSpikePerCell, churn);
    for (std::size_t c = 0; c < kCells; ++c) {
      for (const auto& t : tenants) cluster.launch(c, t);
    }
    cluster.run_until_complete(kCells * tenants.size());
    cluster.set_background_load(0);
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

    const std::uint64_t events =
        cluster.engine().engine().executed_events();
    double aggregate = 0.0;
    int escaped = 0;
    for (std::size_t c = 0; c < kCells; ++c) {
      const auto& st = cluster.engine().engine().stats(
          static_cast<sim::ShardId>(c));
      if (st.busy_seconds > 0.0) {
        aggregate += static_cast<double>(st.executed) / st.busy_seconds;
      }
      for (const auto& r : cluster.results(c)) {
        escaped += r.func_target != runtime::Target::kX86;
      }
    }
    note("phase 5", std::to_string(events) + " events across " +
                        std::to_string(kCells) + " cells");
    std::cout << "[phase 5] " << kCells << "-cell cluster (epoch "
              << cluster.engine().plan().epoch << "): "
              << kCells * tenants.size() << " tenants done, " << escaped
              << " escaped x86, " << cluster.handoffs()
              << " ring handoffs, " << events << " events in " << wall_s
              << " s wall (" << aggregate / 1e6
              << " M events/s aggregate per-core capacity)\n\n";
  }

  // Phase 6: the million-user sweep -- 1,000,000 concurrent background
  // jobs spread over the four cells through the sharded load
  // generator.  Attach/detach bookkeeping is batched per shard (one
  // process-table update and one pool reservation per cell), so the
  // burst costs one O(log n) submit per job instead of funneling a
  // million per-process updates through one CpuCluster.
  {
    constexpr std::size_t kCells = 4;
    constexpr std::uint64_t kJobs = 1'000'000;
    exp::ClusterSpec cluster_spec;
    cluster_spec.cells = kCells;
    cluster_spec.parallel = true;
    exp::ClusterExperiment cluster(specs, estimation.table, cluster_spec,
                                   options);

    auto wall_start = std::chrono::steady_clock::now();
    cluster.set_background_load(kJobs);
    const double attach_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                wall_start)
                                .count();
    cluster.run_for(Duration::ms(100.0));
    note("phase 6", std::to_string(kJobs) + " concurrent jobs across " +
                        std::to_string(kCells) + " cells");

    // All tenants still get placement decisions instantly at 250k
    // resident jobs per cell -- and all of them escape the x86 servers.
    for (std::size_t c = 0; c < kCells; ++c) {
      for (const auto& t : tenants) cluster.launch(c, t);
    }
    cluster.run_until_complete(kCells * tenants.size());
    int escaped = 0;
    std::size_t done = 0;
    for (std::size_t c = 0; c < kCells; ++c) {
      for (const auto& r : cluster.results(c)) {
        ++done;
        escaped += r.func_target != runtime::Target::kX86;
      }
    }

    wall_start = std::chrono::steady_clock::now();
    cluster.set_background_load(0);
    const double detach_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                wall_start)
                                .count();
    note("phase 6 end", "burst cancelled, cells idle again");
    std::cout << "[phase 6] " << kJobs << " jobs attached in " << attach_s
              << " s (" << static_cast<double>(kJobs) / attach_s / 1e6
              << " M jobs/s), detached in " << detach_s << " s; " << done
              << " tenants completed under load, " << escaped
              << " escaped x86\n\n";
  }

  // Phase 7: chaos -- the cluster from phase 5 under fire: a cell dies
  // mid-spike with its drain path partitioned, and the resilience
  // invariants (exactly-once completion, bounded tail) are asserted.
  std::cout << "== Phase 7: chaos ==\n";
  const int chaos_failures = run_chaos_phase();

  // Phase 8: gray-failure storm -- nothing dies cleanly this time.
  // Slowed CPUs, a lossy corrupting ring link, and a coin-flip
  // reconfiguration port, with a kill in the middle; the reliability
  // layer must keep the conservation and tail invariants regardless.
  std::cout << "== Phase 8: gray-failure storm ==\n";
  const int gray_failures = run_gray_phase();

  std::cout << log.render() << "\n";
  std::cout << "During the spike the FPGA-profitable tenants moved to their\n"
               "hardware kernels and CG-A escaped to the ARM server; after\n"
               "the spike everything returned to plain x86 execution.\n";

  const auto& stats = exp.server().stats();
  std::cout << "\nScheduler decisions: " << stats.requests << " requests -> "
            << stats.to_x86 << " x86, " << stats.to_arm << " ARM, "
            << stats.to_fpga << " FPGA; " << stats.reconfigurations_started
            << " FPGA reconfiguration(s) started.\n";
  return chaos_failures + gray_failures;
}
