// Datacenter workload spike: a multi-tenant x86 server hosting five
// tenant applications gets hit by a burst of background jobs.  The
// example narrates every placement decision the Xar-Trek scheduler
// makes before, during and after the spike (the Figure 4/5 scenario,
// one run, verbose).
//
// Build & run:  ./build/examples/datacenter_spike
#include <chrono>
#include <iostream>
#include <vector>

#include "apps/application.hpp"
#include "apps/benchmark_spec.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/threshold_estimator.hpp"
#include "sim/shard.hpp"

int main() {
  using namespace xartrek;
  std::cout << "== Datacenter spike scenario ==\n\n";

  const auto specs = apps::paper_benchmarks();
  const auto estimation = exp::ThresholdEstimator().estimate(specs);

  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::Experiment exp(specs, estimation.table, options);
  auto& sim = exp.simulation();

  const std::vector<std::string> tenants = {
      "facedet320", "facedet640", "digit500", "digit2000", "cg_a"};

  TextTable log("Timeline");
  log.set_header({"t (s)", "event", "x86 load", "detail"});
  auto note = [&](const std::string& event, const std::string& detail) {
    log.add_row({TextTable::num(sim.now().to_ms() / 1000.0, 1), event,
                 std::to_string(exp.testbed().x86().load()), detail});
  };

  // Phase 1: calm -- each tenant runs once on an idle server.
  note("phase 1", "idle server, tenants arrive");
  for (const auto& t : tenants) exp.launch(t);
  exp.run_until_complete(tenants.size());
  for (const auto& r : exp.results()) {
    note("tenant done",
         r.app + " on " + to_string(r.func_target) + " in " +
             TextTable::num(r.elapsed().to_ms(), 0) + " ms");
  }

  // Phase 2: spike -- 80 batch jobs land on the host.
  exp.add_background_load(80);
  sim.run_until(sim.now() + Duration::ms(100));
  note("phase 2", "80-process spike lands");
  const std::size_t before = exp.completed_apps();
  for (const auto& t : tenants) exp.launch(t);
  exp.run_until_complete(before + tenants.size());
  for (std::size_t i = before; i < exp.results().size(); ++i) {
    const auto& r = exp.results()[i];
    note("tenant done",
         r.app + " on " + to_string(r.func_target) + " in " +
             TextTable::num(r.elapsed().to_ms(), 0) + " ms");
  }

  // Phase 3: spike drains.
  exp.set_background_load(0);
  sim.run_until(sim.now() + Duration::ms(100));
  note("phase 3", "spike drains, server idle again");
  const std::size_t before3 = exp.completed_apps();
  for (const auto& t : tenants) exp.launch(t);
  exp.run_until_complete(before3 + tenants.size());
  for (std::size_t i = before3; i < exp.results().size(); ++i) {
    const auto& r = exp.results()[i];
    note("tenant done",
         r.app + " on " + to_string(r.func_target) + " in " +
             TextTable::num(r.elapsed().to_ms(), 0) + " ms");
  }

  // Phase 4: hyperscale burst -- 100,000 concurrent batch jobs land on
  // the host (the "millions of users" regime).  The virtual-time
  // processor-sharing core keeps every submit/cancel/complete at
  // O(log n), so the scheduler still answers placement requests
  // immediately; all five tenants escape the saturated x86 server.
  {
    const auto wall_start = std::chrono::steady_clock::now();
    exp.add_background_load(100'000);
    sim.run_until(sim.now() + Duration::ms(100));
    note("phase 4", "100k-concurrent-job spike lands");
    const std::size_t before4 = exp.completed_apps();
    for (const auto& t : tenants) exp.launch(t);
    exp.run_until_complete(before4 + tenants.size());
    for (std::size_t i = before4; i < exp.results().size(); ++i) {
      const auto& r = exp.results()[i];
      note("tenant done",
           r.app + " on " + to_string(r.func_target) + " in " +
               TextTable::num(r.elapsed().to_ms(), 0) + " ms");
    }
    // Tear the burst down: 100k cancellations through the same
    // O(log n) path.
    exp.set_background_load(0);
    sim.run_until(sim.now() + Duration::ms(100));
    note("phase 4 end", "burst cancelled, server idle again");
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    std::cout << "[phase 4] 100k-job spike simulated in " << wall_s
              << " s wall time\n\n";
  }

  // Phase 5: scale-out -- four datacenter cells, each a shard of an
  // epoch-synchronized multi-queue engine, exchange cross-cell job
  // handoffs over 2 ms links while >1M events churn through their
  // local queues.  This is the sharded core the ROADMAP names as the
  // prerequisite for million-user traffic models: each cell runs its
  // pooled heap lock-free within a 1 ms window, and only the handoffs
  // cross through SPSC mailboxes at window boundaries.
  {
    constexpr std::size_t kCells = 4;
    constexpr std::size_t kLanesPerCell = 256;
    constexpr std::uint64_t kFiresPerLane = 1'200;
    sim::ShardedSimulation cells(sim::ShardedSimulation::Options{
        kCells, Duration::ms(1.0), 4096, /*parallel=*/true});

    struct Lane {
      sim::ShardedSimulation* cells = nullptr;
      sim::Simulation* local = nullptr;
      sim::ShardId home = 0;
      sim::ShardId next = 0;
      std::uint64_t budget = 0;
      std::uint64_t fired = 0;
      double period_ms = 1.0;
      void fire() {
        ++fired;
        if (budget == 0) return;
        --budget;
        if (fired % 32 == 0) {
          // Hand a job off to the neighboring cell (state transfer
          // rides the inter-cell link; 2 ms >= the 1 ms epoch).
          cells->post(home, next, local->now() + Duration::ms(2.0),
                      [] {});
        }
        local->schedule_in(Duration::ms(period_ms), [this] { fire(); });
      }
    };
    std::vector<Lane> lanes(kCells * kLanesPerCell);
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      Lane& lane = lanes[i];
      lane.cells = &cells;
      lane.home = static_cast<sim::ShardId>(i % kCells);
      lane.next = static_cast<sim::ShardId>((i + 1) % kCells);
      lane.local = &cells.shard(lane.home);
      lane.budget = kFiresPerLane;
      lane.period_ms = 0.25 + 0.5 * static_cast<double>(i % 7);
      Lane* p = &lane;
      lane.local->schedule_in(Duration::ms(lane.period_ms),
                              [p] { p->fire(); });
    }

    const auto wall_start = std::chrono::steady_clock::now();
    const std::size_t events = cells.run();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    double busy_s = 0.0;
    double aggregate = 0.0;
    std::uint64_t handoffs = 0;
    for (sim::ShardId c = 0; c < kCells; ++c) {
      const auto& st = cells.stats(c);
      busy_s += st.busy_seconds;
      handoffs += st.posts;
      if (st.busy_seconds > 0.0) {
        aggregate += static_cast<double>(st.executed) / st.busy_seconds;
      }
    }
    note("phase 5", std::to_string(events) + " events across " +
                        std::to_string(kCells) + " cells");
    std::cout << "[phase 5] " << events << " events / " << handoffs
              << " cross-cell handoffs across " << kCells
              << " sharded cells in " << wall_s << " s wall ("
              << static_cast<double>(events) / wall_s / 1e6
              << " M events/s wall, "
              << aggregate / 1e6
              << " M events/s aggregate per-core capacity)\n\n";
  }

  std::cout << log.render() << "\n";
  std::cout << "During the spike the FPGA-profitable tenants moved to their\n"
               "hardware kernels and CG-A escaped to the ARM server; after\n"
               "the spike everything returned to plain x86 execution.\n";

  const auto& stats = exp.server().stats();
  std::cout << "\nScheduler decisions: " << stats.requests << " requests -> "
            << stats.to_x86 << " x86, " << stats.to_arm << " ARM, "
            << stats.to_fpga << " FPGA; " << stats.reconfigurations_started
            << " FPGA reconfiguration(s) started.\n";
  return 0;
}
