// Quickstart: compile one application through the Xar-Trek pipeline and
// watch the run-time place its hot function.
//
//   1. write a step-A profile spec (text) and parse it;
//   2. run steps B-F: instrumentation, multi-ISA build, HLS synthesis,
//      XCLBIN partitioning and generation;
//   3. run step G: threshold estimation on the simulated testbed;
//   4. launch the application at low and at high x86 load and observe
//      the scheduler keep it local / migrate it to the FPGA.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "apps/application.hpp"
#include "apps/benchmark_spec.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/threshold_estimator.hpp"

int main() {
  using namespace xartrek;
  std::cout << "== Xar-Trek quickstart ==\n\n";

  // --- Step A: the profiling spec is a plain text file ----------------
  const auto specs = apps::paper_benchmarks();
  const auto profile = apps::make_profile_spec(specs);
  std::cout << "Step A -- profiling spec:\n" << profile.serialize() << "\n";

  // --- Steps B-F: the compiler pipeline --------------------------------
  const compiler::XarCompiler xar;
  const auto suite = xar.compile(profile, apps::make_irs(specs),
                                 apps::make_kernel_profiles(specs));
  std::cout << "Steps B-F -- compiled " << suite.apps.size()
            << " applications; " << suite.xclbins.size()
            << " XCLBIN image(s):\n";
  for (const auto& image : suite.xclbins) {
    std::cout << "  " << image.id << " (" << image.size_bytes / 1024
              << " KiB) kernels:";
    for (const auto& k : image.kernels) std::cout << " " << k.name;
    std::cout << "\n";
  }
  const auto* fd = suite.find_app("facedet320");
  std::cout << "  facedet320 multi-ISA binary: "
            << fd->binary.file_bytes() / 1024 << " KiB ("
            << fd->binary.metadata().sites().size()
            << " migration points)\n\n";

  // --- Step G: threshold estimation ------------------------------------
  std::cout << "Step G -- threshold estimation (simulated sweeps):\n";
  const auto estimation = exp::ThresholdEstimator().estimate(specs);
  TextTable table("Threshold table");
  table.set_header({"app", "kernel", "FPGA_THR", "ARM_THR"});
  for (const auto& row : estimation.rows) {
    table.add_row({row.app, row.kernel, std::to_string(row.fpga_threshold),
                   std::to_string(row.arm_threshold)});
  }
  std::cout << table.render() << "\n";

  // --- Run-time: placement at low vs high load -------------------------
  auto run_once = [&](int background, const char* label) {
    exp::ExperimentOptions options;
    options.mode = apps::SystemMode::kXarTrek;
    exp::Experiment exp(specs, estimation.table, options);
    exp.warm_fpga_for("facedet320");  // image already live (eager config)
    exp.add_background_load(background);
    exp.simulation().run_until(exp.simulation().now() +
                               Duration::ms(50));  // monitor tick
    exp.launch("facedet320");
    exp.run_until_complete(1);
    const auto& r = exp.results().front();
    std::cout << label << ": facedet320 at x86 load " << (background + 1)
              << " -> executed on " << to_string(r.func_target) << " in "
              << TextTable::num(r.elapsed().to_ms(), 0) << " ms\n";
  };
  run_once(0, "idle server  ");
  run_once(40, "loaded server");

  std::cout << "\nThe scheduler kept the function on x86 while the load was\n"
               "below FPGA_THR and migrated it to the FPGA kernel once the\n"
               "server was saturated -- the paper's headline behaviour.\n";
  return 0;
}
