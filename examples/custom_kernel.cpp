// Registering a user-defined workload with Xar-Trek.
//
// A downstream user brings their own application -- here a sparse
// matrix-vector benchmark ("spmv_bench") -- profiles it, writes the
// step-A spec entry, provides per-target cost numbers and an HLS op
// profile, and gets the full pipeline + scheduler treatment: threshold
// estimation and run-time migration.  This is the "bring your own
// kernel" path a datacenter tenant would follow.
//
// Build & run:  ./build/examples/custom_kernel
#include <iostream>

#include "apps/application.hpp"
#include "apps/benchmark_spec.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/threshold_estimator.hpp"
#include "workloads/cg.hpp"

int main() {
  using namespace xartrek;
  std::cout << "== Custom kernel registration ==\n\n";

  // --- 1. Profile the function (here: measured/derived numbers) --------
  // The user benchmarked their SpMV kernel: 1.2 s on one Xeon core,
  // ~4.4 s on a ThunderX core; it streams 1.5 MiB in, 128 KiB out.
  apps::BenchmarkSpec spmv;
  spmv.name = "spmv_bench";
  spmv.function = "spmv_kernel";
  spmv.kernel_name = "KNL_HW_SPMV";
  spmv.pre = Duration::ms(40);
  spmv.post = Duration::ms(10);
  spmv.func_x86 = Duration::ms(1200);
  spmv.func_arm = Duration::ms(4400);
  spmv.migrate_bytes = 1'572'864;
  spmv.return_bytes = 131'072;
  spmv.fpga_input_bytes = 1'572'864;
  spmv.fpga_output_bytes = 131'072;
  spmv.fpga_items = 1;
  // Op profile per matrix nonzero: a multiply-accumulate plus one
  // data-dependent gather (SpMV's x[col] fetch); ~8M nonzero visits.
  spmv.kernel_profile.ops = hls::OpProfile{1, 2, 1, 1, 8.0e6};
  spmv.kernel_profile.unroll_factor = 2.0;
  spmv.kernel_profile.lines_of_code = 120;
  spmv.total_loc = 420;
  spmv.hot_loc = 120;

  // --- 2. Join the tenant mix ------------------------------------------
  auto specs = apps::paper_benchmarks();
  specs.push_back(spmv);
  std::cout << "Step A spec now contains "
            << apps::make_profile_spec(specs).applications.size()
            << " applications (serialized spec below):\n\n"
            << apps::make_profile_spec(specs).serialize() << "\n";

  // --- 3. Steps B-G ------------------------------------------------------
  const auto estimation = exp::ThresholdEstimator().estimate(specs);
  TextTable table("Estimated thresholds (including the custom kernel)");
  table.set_header(
      {"app", "kernel", "x86 (ms)", "FPGA (ms)", "ARM (ms)", "FPGA_THR",
       "ARM_THR"});
  for (const auto& row : estimation.rows) {
    table.add_row({row.app, row.kernel,
                   TextTable::num(row.x86_exec.to_ms(), 0),
                   TextTable::num(row.fpga_exec.to_ms(), 0),
                   TextTable::num(row.arm_exec.to_ms(), 0),
                   std::to_string(row.fpga_threshold),
                   std::to_string(row.arm_threshold)});
  }
  std::cout << table.render() << "\n";

  // --- 4. Run it under contention ----------------------------------------
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::Experiment exp(specs, estimation.table, options);
  exp.warm_fpga_for("spmv_bench");
  exp.add_background_load(40);
  exp.simulation().run_until(exp.simulation().now() + Duration::ms(50));
  exp.launch("spmv_bench");
  exp.run_until_complete(1);
  const auto& r = exp.results().front();
  std::cout << "spmv_bench at x86 load 41 -> " << to_string(r.func_target)
            << " in " << TextTable::num(r.elapsed().to_ms(), 0)
            << " ms (vanilla x86 under the same load would need ~"
            << TextTable::num(1250.0 * 41 / 6, 0) << " ms)\n";

  // The SpMV software path really exists, too.
  Rng rng(7);
  const auto a = workloads::make_spd_matrix(rng, 2048, 8);
  std::vector<double> x(2048, 1.0);
  std::vector<double> y;
  workloads::spmv(a, x, y);
  double checksum = 0.0;
  for (double v : y) checksum += v;
  std::cout << "functional SpMV checksum over " << a.nonzeros()
            << " nonzeros: " << TextTable::num(checksum, 3) << "\n";
  return 0;
}
